// Package gen provides deterministic synthetic graph generators used to
// simulate the paper's five public datasets (which are not available
// offline). Every generator takes an explicit seed so datasets, tests and
// benchmarks are reproducible run-to-run.
package gen

import (
	"fmt"
	"math/rand"

	"kdash/internal/graph"
)

// ErdosRenyi generates a directed G(n, m) graph: m edges drawn uniformly
// at random without self loops (duplicates merge, so the final edge count
// can be slightly below m).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for v == u {
			v = rng.Intn(n)
		}
		mustAdd(b, u, v, 1)
	}
	return b.Build()
}

// BarabasiAlbert generates an undirected preferential-attachment graph:
// each new node attaches to k existing nodes chosen proportionally to
// degree. It reproduces the heavy-tailed degree distribution of the
// paper's Internet (AS topology) dataset.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if k < 1 || n <= k {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs n > k >= 1, got n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// targets is the repeated-node list implementing preferential
	// attachment: a node appears once per incident edge end.
	targets := make([]int, 0, 2*k*n)
	// Seed clique over the first k+1 nodes.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			mustAdd(b, u, v, 1)
			mustAdd(b, v, u, 1)
			targets = append(targets, u, v)
		}
	}
	for u := k + 1; u < n; u++ {
		chosen := map[int]bool{}
		for len(chosen) < k {
			t := targets[rng.Intn(len(targets))]
			if t != u {
				chosen[t] = true
			}
		}
		for v := range chosen {
			mustAdd(b, u, v, 1)
			mustAdd(b, v, u, 1)
			targets = append(targets, u, v)
		}
	}
	return b.Build()
}

// DirectedScaleFree generates a directed graph by the copy model: each new
// node u emits kOut edges; each edge either picks a uniformly random
// target (prob. beta) or copies the target of a random existing edge
// (prob. 1-beta), which yields a heavy-tailed in-degree distribution.
// Each edge is reciprocated with probability pRecip — trust is often
// mutual and emails get replies — which puts cycles in the graph (a pure
// copy model is a near-DAG, whose LU factors are trivially sparse under
// any ordering and would make the reordering study vacuous). This
// simulates the Epinions-style trust network and the Email graph.
func DirectedScaleFree(n, kOut int, beta, pRecip float64, seed int64) *graph.Graph {
	if kOut < 1 || n <= kOut {
		panic(fmt.Sprintf("gen: DirectedScaleFree needs n > kOut >= 1, got n=%d kOut=%d", n, kOut))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	var targets []int
	// Bootstrap ring over the first kOut+1 nodes.
	for u := 0; u <= kOut; u++ {
		v := (u + 1) % (kOut + 1)
		mustAdd(b, u, v, 1)
		targets = append(targets, v)
	}
	for u := kOut + 1; u < n; u++ {
		for e := 0; e < kOut; e++ {
			var v int
			if rng.Float64() < beta || len(targets) == 0 {
				v = rng.Intn(u)
			} else {
				v = targets[rng.Intn(len(targets))]
			}
			if v == u {
				v = rng.Intn(u)
			}
			mustAdd(b, u, v, 1)
			targets = append(targets, v)
			if rng.Float64() < pRecip {
				mustAdd(b, v, u, 1)
			}
		}
	}
	return b.Build()
}

// PlantedPartition generates an undirected weighted graph with k equal
// communities: within-community edges appear with probability pIn, cross
// edges with pOut. Weights are 1 + Exp(1)-ish jitter to simulate the
// weighted co-authorship (Citation) dataset.
func PlantedPartition(n, k int, pIn, pOut float64, seed int64) *graph.Graph {
	if k < 1 || n < k {
		panic(fmt.Sprintf("gen: PlantedPartition needs n >= k >= 1, got n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	community := func(u int) int { return u * k / n }
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if community(u) == community(v) {
				p = pIn
			}
			if rng.Float64() < p {
				w := 1 + rng.ExpFloat64()
				mustAdd(b, u, v, w)
				mustAdd(b, v, u, w)
			}
		}
	}
	// Guarantee no isolated nodes: chain each edgeless node to a
	// community mate so BFS/Louvain behave.
	g := b.Build()
	b2 := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		mustAdd(b2, e.From, e.To, e.Weight)
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) == 0 {
			v := (u + 1) % n
			mustAdd(b2, u, v, 1)
			mustAdd(b2, v, u, 1)
		}
	}
	return b2.Build()
}

// WattsStrogatz generates an undirected small-world ring lattice with k
// neighbours per side and rewiring probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if k < 1 || n <= 2*k {
		panic(fmt.Sprintf("gen: WattsStrogatz needs n > 2k, got n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ u, v int }
	seen := map[pair]bool{}
	var edges []pair
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				v = rng.Intn(n)
				for v == u || seen[pair{min(u, v), max(u, v)}] {
					v = rng.Intn(n)
				}
			}
			p := pair{min(u, v), max(u, v)}
			if !seen[p] {
				seen[p] = true
				edges = append(edges, p)
			}
		}
	}
	b := graph.NewBuilder(n)
	for _, e := range edges {
		mustAdd(b, e.u, e.v, 1)
		mustAdd(b, e.v, e.u, 1)
	}
	return b.Build()
}

// CommunityOverlay generates a directed graph combining preferential
// attachment (degree skew) with planted communities (clusterability), and
// is used for the Dictionary analogue: term u's definition "uses" a few
// popular terms plus a few same-topic terms.
func CommunityOverlay(n, k, communities int, pSame float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	community := func(u int) int { return u % communities }
	var targets []int
	for u := 0; u < communities && u < n; u++ {
		v := (u + 1) % communities
		if v != u {
			mustAdd(b, u, v, 1)
			targets = append(targets, v)
		}
	}
	for u := 0; u < n; u++ {
		for e := 0; e < k; e++ {
			var v int
			if rng.Float64() < pSame {
				// Same-community target.
				v = community(u) + communities*rng.Intn(max(1, n/communities))
				if v >= n || v == u {
					continue
				}
			} else if len(targets) > 0 && rng.Float64() < 0.7 {
				v = targets[rng.Intn(len(targets))]
			} else {
				v = rng.Intn(n)
			}
			if v == u || v >= n {
				continue
			}
			mustAdd(b, u, v, 1)
			targets = append(targets, v)
		}
	}
	// Ensure every node has at least one out-edge so BFS from any query
	// reaches a non-trivial set.
	g := b.Build()
	b2 := graph.NewBuilder(n)
	for _, e := range g.Edges() {
		mustAdd(b2, e.From, e.To, e.Weight)
	}
	for u := 0; u < n; u++ {
		if g.OutDegree(u) == 0 {
			mustAdd(b2, u, (u+1)%n, 1)
		}
	}
	return b2.Build()
}

// Bipartite generates a directed bipartite graph with nLeft + nRight
// nodes; each left node links to k random right nodes and back, the shape
// of user-item graphs in recommender workloads.
func Bipartite(nLeft, nRight, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := nLeft + nRight
	b := graph.NewBuilder(n)
	for u := 0; u < nLeft; u++ {
		for e := 0; e < k; e++ {
			v := nLeft + rng.Intn(nRight)
			mustAdd(b, u, v, 1)
			mustAdd(b, v, u, 1)
		}
	}
	return b.Build()
}

func mustAdd(b *graph.Builder, u, v int, w float64) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err) // generators only produce in-range edges
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
