package dataset

import (
	"fmt"
	"math/rand"

	"kdash/internal/graph"
)

// dictionarySize is the total node count of the Dictionary analogue
// (paper original: 13,356 nodes / 120,238 edges from FOLDOC).
const dictionarySize = 1200

// dictionaryCommunities is the number of topic clusters among the
// synthetic filler terms.
const dictionaryCommunities = 24

// seedTerm describes one curated FOLDOC-style entry: the term and the
// terms its definition uses (out-edges), mirroring the paper's edge
// semantics "u -> v iff term v is used to describe term u".
type seedTerm struct {
	term string
	uses []string
}

// curatedTerms is a hand-built core vocabulary that lets the Table 2 case
// study (company and operating-system names) run against the synthetic
// dictionary. The families mirror the paper's qualitative findings:
// Microsoft terms cluster together, Apple terms cluster together, Linux
// sits in the free-software neighbourhood, and everything leans on a few
// hub terms ("operating system", "computer", ...).
var curatedTerms = []seedTerm{
	// Hub terms: high in-degree, used by almost everything below.
	{"computer", []string{"software", "hardware"}},
	{"software", []string{"computer", "program"}},
	{"hardware", []string{"computer"}},
	{"program", []string{"software", "computer"}},
	{"operating system", []string{"software", "computer", "kernel"}},
	{"personal computer", []string{"computer", "hardware"}},
	{"graphical user interface", []string{"software", "user interface"}},
	{"user interface", []string{"software"}},
	{"command line", []string{"user interface", "shell"}},
	{"shell", []string{"command line", "operating system"}},
	{"kernel", []string{"operating system"}},
	{"file system", []string{"operating system", "disk"}},
	{"disk", []string{"hardware"}},
	{"network", []string{"computer", "protocol"}},
	{"protocol", []string{"network"}},

	// Microsoft family.
	{"Microsoft", []string{"Microsoft Corporation", "MS-DOS", "IBM PC", "Microsoft Windows", "software"}},
	{"Microsoft Corporation", []string{"Microsoft", "software", "MS-DOS"}},
	{"MS-DOS", []string{"Microsoft", "operating system", "IBM PC", "command line"}},
	{"IBM PC", []string{"personal computer", "MS-DOS", "Microsoft", "hardware"}},
	{"Microsoft Windows", []string{"Microsoft", "W2K", "Windows/386", "Windows 3.0", "Windows 3.11", "operating system"}},
	{"Microsoft Basic", []string{"Microsoft", "program"}},
	{"W2K", []string{"Microsoft Windows", "operating system"}},
	{"Windows/386", []string{"Microsoft Windows", "operating system"}},
	{"Windows 3.0", []string{"Microsoft Windows", "graphical user interface"}},
	{"Windows 3.11", []string{"Microsoft Windows", "Windows 3.0", "network"}},
	{"Microsoft Networking", []string{"Microsoft Windows", "network"}},

	// Apple family.
	{"APPLE", []string{"Apple Computer, Inc.", "Apple II", "Apple Attachment Unit Interface", "personal computer"}},
	{"Apple Computer, Inc.", []string{"APPLE", "Macintosh", "personal computer"}},
	{"Apple II", []string{"APPLE", "personal computer", "Apple Computer, Inc."}},
	{"Apple Attachment Unit Interface", []string{"APPLE", "network", "hardware"}},
	{"Macintosh", []string{"Apple Computer, Inc.", "personal computer", "Mac OS"}},
	{"Mac OS", []string{"Macintosh user interface", "Macintosh file system", "Macintosh Operating System", "multitasking", "Macintosh"}},
	{"Macintosh user interface", []string{"Mac OS", "graphical user interface", "Macintosh"}},
	{"Macintosh file system", []string{"Mac OS", "file system", "Macintosh"}},
	{"Macintosh Operating System", []string{"Mac OS", "operating system", "Macintosh"}},
	{"multitasking", []string{"operating system", "kernel"}},

	// Linux / free-software family.
	{"Linux", []string{"Linux Documentation Project", "Unix", "lint", "Linux Network Administrators' Guide", "kernel"}},
	{"Unix", []string{"operating system", "kernel", "shell"}},
	{"Linux Documentation Project", []string{"Linux", "GNU", "documentation"}},
	{"Linux Network Administrators' Guide", []string{"Linux", "network", "documentation"}},
	{"lint", []string{"Unix", "program"}},
	{"GNU", []string{"free software", "Unix"}},
	{"free software", []string{"software", "GNU", "open source"}},
	{"open source", []string{"free software", "software"}},
	{"documentation", []string{"software"}},
}

// Dictionary builds the labelled FOLDOC analogue: the curated vocabulary
// above embedded in a preferential-attachment + topic-community filler so
// the graph has the original's degree skew and mild clusterability.
func Dictionary() *Dataset {
	rng := rand.New(rand.NewSource(1000))
	n := dictionarySize
	b := graph.NewBuilder(n)
	labels := make([]string, n)
	id := map[string]int{}
	for i, st := range curatedTerms {
		labels[i] = st.term
		id[st.term] = i
	}
	for i := len(curatedTerms); i < n; i++ {
		labels[i] = fmt.Sprintf("term%04d", i)
	}
	mustAdd := func(u, v int) {
		if u != v {
			if err := b.AddEdge(u, v, 1); err != nil {
				panic(err)
			}
		}
	}
	// Curated out-edges.
	for i, st := range curatedTerms {
		for _, used := range st.uses {
			j, ok := id[used]
			if !ok {
				panic(fmt.Sprintf("dataset: curated term %q uses unknown term %q", st.term, used))
			}
			mustAdd(i, j)
		}
	}
	nSeed := len(curatedTerms)
	// Hub terms attract filler definitions (by curated index).
	hubs := []int{0, 1, 3, 4, 5, 6, 13} // computer, software, program, OS, PC, GUI, network
	community := func(u int) int { return u % dictionaryCommunities }
	// Filler terms: each definition uses ~8 terms — some same-topic, some
	// hubs, some random earlier terms (preferential flavour via recency
	// bias), plus occasional links into the curated families so the case
	// study sees realistic in-degrees.
	for u := nSeed; u < n; u++ {
		outs := map[int]bool{}
		for len(outs) < 8 {
			r := rng.Float64()
			var v int
			switch {
			case r < 0.40: // same-topic filler term
				v = nSeed + community(u-nSeed) + dictionaryCommunities*rng.Intn((n-nSeed)/dictionaryCommunities)
				if v >= n {
					continue
				}
			case r < 0.65: // hub term
				v = hubs[rng.Intn(len(hubs))]
			case r < 0.75: // any curated term
				v = rng.Intn(nSeed)
			default: // any term
				v = rng.Intn(n)
			}
			if v != u {
				outs[v] = true
			}
		}
		for v := range outs {
			mustAdd(u, v)
		}
	}
	return &Dataset{Name: "Dictionary", Graph: b.Build(), Labels: labels}
}

// CaseStudyTerms lists the query terms of the paper's Table 2.
func CaseStudyTerms() []string {
	return []string{"Microsoft", "APPLE", "Microsoft Windows", "Mac OS", "Linux"}
}
