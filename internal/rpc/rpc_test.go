package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// trickyFloats exercise the bit-exactness seam: negative zero,
// denormals, and values whose decimal round-trip would differ.
var trickyFloats = []float64{
	0, math.Copysign(0, -1), 1.0 / 3.0, 5e-324, -5e-324,
	math.Nextafter(1, 2), 0.1 + 0.2, 1e308, -2.2250738585072014e-308,
}

func TestSolveCodecRoundTrip(t *testing.T) {
	idx := []int{0, 3, 7, 12}
	val := trickyFloats[:4]
	req := AppendSolveRequest(nil, 42, 3, idx, val)
	epoch, shard, gotIdx, gotVal, err := DecodeSolveRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 || shard != 3 || !reflect.DeepEqual(gotIdx, idx) {
		t.Fatalf("request decoded to epoch=%d shard=%d idx=%v", epoch, shard, gotIdx)
	}
	for i, v := range gotVal {
		if math.Float64bits(v) != math.Float64bits(val[i]) {
			t.Fatalf("val[%d]: %x != %x", i, math.Float64bits(v), math.Float64bits(val[i]))
		}
	}

	// Sparse reply: support order must come back verbatim, untouched
	// rows must keep their stale values.
	y := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
	ysup := []int{5, 2, 8} // first-touch order, deliberately unsorted
	resp := AppendSolveResponse(nil, y, ysup, len(y))
	scratch := []float64{-1, -1, -1, -1, -1, -1, -1, -1, -1}
	gotSup, err := DecodeSolveResponse(resp, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotSup, ysup) {
		t.Fatalf("support order changed: %v != %v", gotSup, ysup)
	}
	for _, lv := range ysup {
		if scratch[lv] != y[lv] {
			t.Fatalf("row %d: %v != %v", lv, scratch[lv], y[lv])
		}
	}
	if scratch[0] != -1 || scratch[1] != -1 {
		t.Fatalf("rows outside the support were written: %v", scratch)
	}

	// Dense reply fills the leading rows and returns a nil support.
	resp = AppendSolveResponse(nil, trickyFloats, nil, len(trickyFloats))
	dense := make([]float64, len(trickyFloats))
	gotSup, err = DecodeSolveResponse(resp, dense)
	if err != nil {
		t.Fatal(err)
	}
	if gotSup != nil {
		t.Fatalf("dense reply returned a support: %v", gotSup)
	}
	for i, v := range dense {
		if math.Float64bits(v) != math.Float64bits(trickyFloats[i]) {
			t.Fatalf("dense row %d lost bits", i)
		}
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	const blockWidth, partLen, nodesLen = 4, 6, 5
	// 6 lanes: chunk 0 (lanes 0-3) shares a support, chunk 1 (lanes
	// 4-5) is dense — both shapes in one reply.
	ys := make([][]float64, 6)
	for j := range ys {
		ys[j] = make([]float64, partLen)
		for i := range ys[j] {
			ys[j][i] = float64(j*10+i) + 1.0/3.0
		}
	}
	sups := make([][]int, 6)
	sups[0] = []int{4, 1, 5} // includes the ghost-sink row partLen-1
	resp := AppendBatchSolveResponse(nil, ys, sups, blockWidth, nodesLen)
	gotYs, gotSups, err := DecodeBatchSolveResponse(resp, blockWidth, partLen)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotYs) != 6 {
		t.Fatalf("lanes: %d", len(gotYs))
	}
	if !reflect.DeepEqual(gotSups[0], sups[0]) {
		t.Fatalf("chunk-0 support: %v != %v", gotSups[0], sups[0])
	}
	for _, g := range []int{1, 2, 3, 5} {
		if gotSups[g] != nil {
			t.Fatalf("sups[%d] should be nil (non-chunk-start or dense)", g)
		}
	}
	for j := 0; j < 4; j++ {
		for _, lv := range sups[0] {
			if math.Float64bits(gotYs[j][lv]) != math.Float64bits(ys[j][lv]) {
				t.Fatalf("lane %d row %d lost bits", j, lv)
			}
		}
	}
	for j := 4; j < 6; j++ {
		for i := 0; i < nodesLen; i++ {
			if math.Float64bits(gotYs[j][i]) != math.Float64bits(ys[j][i]) {
				t.Fatalf("dense lane %d row %d lost bits", j, i)
			}
		}
	}

	// Request side.
	rhs := [][]float64{trickyFloats[:3], trickyFloats[3:6]}
	req := AppendBatchSolveRequest(nil, 7, 2, rhs)
	epoch, shard, gotRHS, err := DecodeBatchSolveRequest(req)
	if err != nil || epoch != 7 || shard != 2 {
		t.Fatalf("epoch=%d shard=%d err=%v", epoch, shard, err)
	}
	for b := range rhs {
		for i := range rhs[b] {
			if math.Float64bits(gotRHS[b][i]) != math.Float64bits(rhs[b][i]) {
				t.Fatalf("rhs[%d][%d] lost bits", b, i)
			}
		}
	}
}

func TestControlCodecs(t *testing.T) {
	h := HelloResponse{N: 1 << 40, Shards: 16, Epoch: 9}
	got, err := DecodeHelloResponse(AppendHelloResponse(nil, h))
	if err != nil || got != h {
		t.Fatalf("hello: %+v err=%v", got, err)
	}
	delta := []byte{1, 2, 3, 4, 5}
	epoch, gotDelta, err := DecodePrepareRequest(AppendPrepareRequest(nil, 12, delta))
	if err != nil || epoch != 12 || !reflect.DeepEqual(gotDelta, delta) {
		t.Fatalf("prepare: epoch=%d delta=%v err=%v", epoch, gotDelta, err)
	}
	e, err := DecodeEpochRequest(AppendEpochRequest(nil, 99))
	if err != nil || e != 99 {
		t.Fatalf("epoch: %d err=%v", e, err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	req := AppendSolveRequest(nil, 1, 2, []int{1, 2, 3}, []float64{1, 2, 3})
	for cut := 0; cut < len(req); cut++ {
		if _, _, _, _, err := DecodeSolveRequest(req[:cut]); err == nil && cut < len(req) {
			// A shorter prefix can still be a valid smaller message only
			// if the length field shrank with it; with a fixed header
			// every strict prefix must fail.
			t.Fatalf("truncated request at %d bytes decoded cleanly", cut)
		}
	}
	resp := AppendSolveResponse(nil, []float64{0, 1, 2}, []int{2, 0}, 3)
	y := make([]float64, 3)
	for cut := 0; cut < len(resp); cut++ {
		if _, err := DecodeSolveResponse(resp[:cut], y); err == nil {
			t.Fatalf("truncated response at %d bytes decoded cleanly", cut)
		}
	}
}

// echoHandler sums the request bytes and echoes body+sum so a torn or
// replayed call is detectable as a wrong answer.
type echoHandler struct {
	calls atomic.Int64
	sleep time.Duration
}

func (h *echoHandler) Handle(op uint8, body []byte) ([]byte, error) {
	h.calls.Add(1)
	if h.sleep > 0 {
		time.Sleep(h.sleep)
	}
	switch op {
	case OpPing:
		return nil, nil
	case OpHello:
		return AppendHelloResponse(nil, HelloResponse{N: 10, Shards: 2, Epoch: 1}), nil
	case OpSolve:
		var sum uint64
		for _, b := range body {
			sum += uint64(b)
		}
		out := append([]byte(nil), body...)
		return binary.LittleEndian.AppendUint64(out, sum), nil
	case OpCommit:
		return nil, ErrWrongEpoch
	default:
		return nil, fmt.Errorf("boom op %d", op)
	}
}

func startServer(t *testing.T, h Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go Serve(ln, h) //nolint:errcheck // closes with the listener
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestClientBasics(t *testing.T) {
	h := &echoHandler{}
	addr := startServer(t, h)
	c := NewClient(addr, nil, time.Second)
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	hello, err := c.Hello()
	if err != nil || hello.N != 10 || hello.Shards != 2 || hello.Epoch != 1 {
		t.Fatalf("hello %+v err=%v", hello, err)
	}
	if _, err := c.Call(OpCommit, nil); !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("want ErrWrongEpoch, got %v", err)
	}
	if _, err := c.Call(OpAbort, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("handler error should wrap ErrUnavailable, got %v", err)
	}
	// Handler errors must not be retried: the worker answered.
	before := h.calls.Load()
	c.Call(OpAbort, nil) //nolint:errcheck // error path under test
	if h.calls.Load() != before+1 {
		t.Fatalf("deterministic rejection was retried: %d calls", h.calls.Load()-before)
	}
}

func TestClientTimeoutIsUnavailable(t *testing.T) {
	addr := startServer(t, &echoHandler{sleep: 500 * time.Millisecond})
	c := NewClient(addr, nil, 50*time.Millisecond)
	defer c.Close()
	if _, err := c.Call(OpSolve, []byte{1}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("timeout should map to ErrUnavailable, got %v", err)
	}
}

func TestClientDialFailureIsUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here any more
	c := NewClient(addr, nil, time.Second)
	defer c.Close()
	if _, err := c.Call(OpPing, nil); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dial failure should map to ErrUnavailable, got %v", err)
	}
}

func TestClientRetriesTornConnection(t *testing.T) {
	// First connection accepted and slammed shut; the client's single
	// internal retry must transparently recover on the second.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	h := &echoHandler{}
	var conns atomic.Int64
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			if conns.Add(1) == 1 {
				nc.Close()
				continue
			}
			go ServeConn(nc, h)
		}
	}()
	c := NewClient(ln.Addr().String(), nil, time.Second)
	defer c.Close()
	body := []byte{9, 8, 7}
	resp, err := c.Call(OpSolve, body)
	if err != nil {
		t.Fatalf("retry should have recovered: %v", err)
	}
	if len(resp) != len(body)+8 {
		t.Fatalf("short response: %d bytes", len(resp))
	}
}

// TestFaultyNeverWrong is the satellite-1 acceptance test: under
// seeded drops, delays, and truncations, every call either returns the
// exact expected bytes or a typed ErrUnavailable — never a wrong
// answer, and never an untyped error.
func TestFaultyNeverWrong(t *testing.T) {
	addr := startServer(t, &echoHandler{})
	for _, f := range []Faults{
		{Seed: 1, DropProb: 0.3},
		{Seed: 2, TruncProb: 0.3},
		{Seed: 3, DropProb: 0.15, TruncProb: 0.15, DelayProb: 0.2, MaxDelay: time.Millisecond},
	} {
		c := NewClient(addr, FaultyDialer(nil, f), time.Second)
		ok, unavailable := 0, 0
		for i := 0; i < 200; i++ {
			body := []byte{byte(i), byte(i >> 3), byte(i * 7)}
			resp, err := c.Call(OpSolve, body)
			if err != nil {
				if !errors.Is(err, ErrUnavailable) {
					t.Fatalf("faults %+v call %d: untyped error %v", f, i, err)
				}
				unavailable++
				continue
			}
			ok++
			var sum uint64
			for _, b := range body {
				sum += uint64(b)
			}
			want := binary.LittleEndian.AppendUint64(append([]byte(nil), body...), sum)
			if !reflect.DeepEqual(resp, want) {
				t.Fatalf("faults %+v call %d: WRONG ANSWER %v != %v", f, i, resp, want)
			}
		}
		c.Close()
		if ok == 0 {
			t.Fatalf("faults %+v: no call ever succeeded (retry path dead?)", f)
		}
		t.Logf("faults %+v: %d ok, %d unavailable", f, ok, unavailable)
	}
}

func TestFrameLimit(t *testing.T) {
	srv, cli := net.Pipe()
	defer srv.Close()
	defer cli.Close()
	go func() {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
		srv.Write(hdr[:]) //nolint:errcheck // test writer
	}()
	if _, err := ReadFrame(cli, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestClientClose: Close drops the idle pool, new calls fail typed,
// a double Close is harmless, and a checked-out connection returned
// after Close is closed rather than re-pooled.
func TestClientClose(t *testing.T) {
	addr := startServer(t, &echoHandler{})
	c := NewClient(addr, nil, time.Second)
	if err := c.Ping(); err != nil {
		t.Fatal(err) // seeds one idle connection for Close to drop
	}
	cn, err := c.checkout()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close()
	c.checkin(cn) // post-Close checkin must close, not re-pool
	if len(c.idle) != 0 {
		t.Fatalf("connection re-pooled after Close (%d idle)", len(c.idle))
	}
	if err := c.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("call on closed client: %v, want ErrUnavailable", err)
	}
}
