package bpa

import (
	"testing"

	"kdash/internal/gen"
	"kdash/internal/rwr"
	"kdash/internal/topk"
)

func TestTighterEpsilonSharpensAnswerSet(t *testing.T) {
	// A smaller push threshold leaves less residual, so the answer set
	// (everything whose upper bound reaches the k-th lower bound) can only
	// get tighter, while recall stays 1 at both settings.
	g := gen.PlantedPartition(150, 4, 0.2, 0.01, 1)
	a := g.ColumnNormalized()
	loose, err := New(g, Options{Hubs: 10, Epsilon: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := New(g, Options{Hubs: 10, Epsilon: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	q, k := 7, 5
	want, err := rwr.TopK(a, q, k, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	rl, sl, err := loose.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	rt, st, err := tight.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt) > len(rl) {
		t.Errorf("tighter epsilon grew the answer set: %d vs %d", len(rt), len(rl))
	}
	if st.Residual > sl.Residual {
		t.Errorf("tighter epsilon left more residual: %v vs %v", st.Residual, sl.Residual)
	}
	for _, rs := range [][]topk.Result{rl, rt} {
		set := map[int]bool{}
		for _, r := range rs {
			set[r.Node] = true
		}
		for _, w := range want {
			if w.Score > 1e-9 && !set[w.Node] {
				t.Errorf("recall violated: exact answer %d missing", w.Node)
			}
		}
	}
	if sl.Pushes >= st.Pushes {
		t.Errorf("tighter epsilon should push more: %d vs %d", st.Pushes, sl.Pushes)
	}
}
