// Package topk provides a bounded top-k accumulator for (node, score)
// pairs, used by every search algorithm in the repository.
package topk

import (
	"container/heap"
	"sort"
)

// Result is one ranked answer.
type Result struct {
	Node  int
	Score float64
}

// Heap keeps the K largest scores seen so far. The zero value is not
// usable; construct with New.
type Heap struct {
	k     int
	items minHeap
}

// New returns a top-k accumulator for k results. k must be positive.
func New(k int) *Heap {
	if k <= 0 {
		panic("topk: k must be positive")
	}
	return &Heap{k: k}
}

// K reports the configured capacity.
func (h *Heap) K() int { return h.k }

// Len reports how many results are currently held (<= K).
func (h *Heap) Len() int { return len(h.items) }

// Threshold returns the K-th highest score seen so far, or 0 when fewer
// than K results are held. This is the paper's θ: a new node can only be
// an answer if its score is above it.
func (h *Heap) Threshold() float64 {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

// Push offers a result; it is kept only if it beats the current threshold
// or the heap is not full. Returns true if the set of kept results changed.
func (h *Heap) Push(node int, score float64) bool {
	if len(h.items) < h.k {
		heap.Push(&h.items, Result{node, score})
		return true
	}
	if score > h.items[0].Score || (score == h.items[0].Score && node < h.items[0].Node) {
		h.items[0] = Result{node, score}
		heap.Fix(&h.items, 0)
		return true
	}
	return false
}

// Results returns the kept results sorted by descending score, ties broken
// by ascending node id for determinism.
func (h *Heap) Results() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	SortResults(out)
	return out
}

// SortResults orders results by descending score, then ascending node id.
func SortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].Node < rs[j].Node
	})
}

// FromVector returns the top-k entries of a dense score vector.
func FromVector(scores []float64, k int) []Result {
	h := New(k)
	for node, s := range scores {
		h.Push(node, s)
	}
	return h.Results()
}

type minHeap []Result

func (m minHeap) Len() int { return len(m) }
func (m minHeap) Less(i, j int) bool {
	if m[i].Score != m[j].Score {
		return m[i].Score < m[j].Score
	}
	// Higher node id is "worse" on ties so eviction is deterministic.
	return m[i].Node > m[j].Node
}
func (m minHeap) Swap(i, j int)       { m[i], m[j] = m[j], m[i] }
func (m *minHeap) Push(x interface{}) { *m = append(*m, x.(Result)) }
func (m *minHeap) Pop() interface{} {
	old := *m
	n := len(old)
	x := old[n-1]
	*m = old[:n-1]
	return x
}
