package lu

// Single-lane sparse triangular-inverse solver: the latency-critical
// counterpart of Inverse.SolveBatch. A right-hand side with few nonzeros
// reaches few rows of L^{-1}, and when that reach is small the U^{-1}
// apply can run as a column scatter over exactly the reached rows
// (through the lazily transposed factor) instead of sweeping every
// stored row entry — so a solve costs work proportional to the factor
// entries its support actually touches, the proportionality the paper's
// precomputed-inverse design promises. Workspaces are recycled across
// calls and cleared by support list (never by full-vector zeroing), so a
// steady-state solve allocates nothing.

import (
	"sort"

	"kdash/internal/lu/kernels"
	"kdash/internal/sparse"
)

// UinvByColumn returns U^{-1} transposed to column-major form, built
// lazily once and immutable afterwards. Column form is what a
// support-driven apply needs: the contribution of workspace row j to the
// solution is column j of U^{-1}.
func (inv *Inverse) UinvByColumn() *sparse.CSC {
	inv.uinvColOnce.Do(func() { inv.uinvCol = inv.Uinv.ToCSC() })
	return inv.uinvCol
}

// uinvColSizes returns per-column entry counts of U^{-1} — the only
// piece of the transpose the scatter-vs-sweep decision needs. Counting
// is one O(nnz) pass and n ints, far cheaper than materialising the
// transposed factor, which matters for indexes whose solves always take
// the sweep (a monolithic index never pays for a transpose it never
// scatters through).
func (inv *Inverse) uinvColSizes() []int {
	inv.uinvColSizeOnce.Do(func() {
		counts := make([]int, inv.N)
		for _, c := range inv.Uinv.ColIdx {
			counts[c]++
		}
		inv.uinvColSize = counts
	})
	return inv.uinvColSize
}

// UinvColSizes exposes the per-column entry counts of U^{-1} to core's
// batch kernel, which shares the scatter-vs-sweep cost model.
func (inv *Inverse) UinvColSizes() []int { return inv.uinvColSizes() }

// PreferFlagScan reports whether re-deriving an ascending support of w
// rows out of n mark flags (one O(n) scan) beats sorting the unordered
// support list (O(w log w)): only when the support is a sizable fraction
// of the matrix. Shared by this solver and core's batch kernel so the
// two cost models cannot drift.
func PreferFlagScan(w, n int) bool {
	return w >= 64 && n/w < 16
}

// SparseSolver computes x = U^{-1} L^{-1} r for sparse right-hand sides
// against one Inverse, tracking the support of every intermediate so no
// full-length vector is ever allocated, zeroed or swept per solve. Not
// safe for concurrent use; callers pool instances.
type SparseSolver struct {
	inv *Inverse

	ws    []float64 // L^{-1} r, live only on wsup
	wmark []bool
	wsup  []int

	out    []float64 // solution, live only on osup (or everywhere after a dense apply)
	omark  []bool
	osup   []int
	odense bool // last apply wrote every row of out
}

// NewSparseSolver returns a reusable single-lane solver. Workspaces are
// allocated on first use and recycled across calls.
func (inv *Inverse) NewSparseSolver() *SparseSolver {
	return &SparseSolver{inv: inv}
}

// Solve computes x = U^{-1} L^{-1} r for the sparse right-hand side given
// as parallel (idx, val) slices, accumulating entries in the given order
// (pass indices ascending to match the dense reference exactly; values
// are then bit-identical to SolveBatch's single-lane answer). It returns
// the solution and its support: the rows written by this call, unordered.
// Rows outside the support hold stale values from earlier calls — not
// zeros — so callers must restrict reads to the support. A nil support
// means every row was written. Both slices are valid only until the next
// Solve call.
func (s *SparseSolver) Solve(idx []int, val []float64) ([]float64, []int) {
	inv := s.inv
	n := inv.N
	if s.ws == nil {
		// One slot past n: the trash row the blocked kernels' padding
		// entries accumulate zeros into.
		s.ws = make([]float64, n+1)
		s.wmark = make([]bool, n)
		s.out = make([]float64, n+1)
		s.omark = make([]bool, n)
		// Non-nil even when empty: a nil support means "dense", and an
		// empty solve's support is empty, not dense.
		s.wsup = make([]int, 0, 64)
		s.osup = make([]int, 0, 64)
	}
	// Reclaim the previous call's output now that the caller is done with
	// it: spot-clean exactly the rows it wrote.
	if s.odense {
		clear(s.out)
		s.odense = false
	} else {
		for _, r := range s.osup {
			s.out[r] = 0
			s.omark[r] = false
		}
	}
	s.osup = s.osup[:0]

	// ws = L^{-1} r, accumulated column by column over the nonzero
	// right-hand side entries, recording which rows the solve reaches and
	// how many U^{-1} entries a column scatter over them would touch.
	// Only the per-column sizes are needed here; the transposed factor
	// itself is materialised the first time a scatter is actually taken.
	colSize := inv.uinvColSizes()
	blkL, blkU := inv.blocked()
	f32 := inv.Precision == Float32 && blkL != nil && blkU != nil
	ws, wmark := s.ws, s.wmark
	wsup := s.wsup[:0]
	scatterEntries := 0
	if blkL != nil {
		// Blocked path: bookkeeping walks the true entries, the kernel
		// walks the padded strip. Marks first, then the accumulate —
		// per-entry order inside a column is unchanged, so the result
		// and the first-touch order of wsup match the scalar loop.
		bp, br := blkL.ColPtr, blkL.Rows
		var bv []float64
		var bv32 []float32
		if f32 {
			bv32 = blkL.Vals32()
		} else {
			bv = blkL.Vals
		}
		for t, j := range idx {
			v := val[t]
			if v == 0 {
				continue
			}
			lo, hi := bp[j], bp[j+1]
			cnt := blkL.ColCnt[j]
			if int(cnt) < kernels.MinEntries {
				// Short column: one fused pass beats a kernel call.
				rows := br[lo : lo+cnt]
				if f32 {
					vals := bv32[lo : lo+cnt]
					vals = vals[:len(rows)] // hint: drops the vals[k] bounds check
					for k, r := range rows {
						if !wmark[r] {
							wmark[r] = true
							wsup = append(wsup, int(r))
							scatterEntries += colSize[r]
						}
						ws[r] += float64(vals[k]) * v
					}
				} else {
					vals := bv[lo : lo+cnt]
					vals = vals[:len(rows)]
					for k, r := range rows {
						if !wmark[r] {
							wmark[r] = true
							wsup = append(wsup, int(r))
							scatterEntries += colSize[r]
						}
						ws[r] += vals[k] * v
					}
				}
				continue
			}
			for _, r := range br[lo : lo+cnt] {
				if !wmark[r] {
					wmark[r] = true
					wsup = append(wsup, int(r))
					scatterEntries += colSize[r]
				}
			}
			if f32 {
				kernels.ScatterAXPY32(ws, br[lo:hi], bv32[lo:hi], v)
			} else {
				kernels.ScatterAXPY(ws, br[lo:hi], bv[lo:hi], v)
			}
		}
	} else {
		lp, lr, lval := inv.Linv.ColPtr, inv.Linv.RowIdx, inv.Linv.Val
		for t, j := range idx {
			v := val[t]
			if v == 0 {
				continue
			}
			for p := lp[j]; p < lp[j+1]; p++ {
				r := lr[p]
				if !wmark[r] {
					wmark[r] = true
					wsup = append(wsup, r)
					scatterEntries += colSize[r]
				}
				ws[r] += v * lval[p]
			}
		}
	}
	s.wsup = wsup

	// Pick the cheaper U^{-1} apply: the scatter pays the support's
	// column entries plus ordering and output bookkeeping, the sweep pays
	// every stored entry.
	var sup []int
	if scatterEntries+2*len(wsup) < inv.Uinv.NNZ() {
		if blkU != nil {
			sup = s.applyUpperScatterBlocked(blkU, f32)
		} else {
			sup = s.applyUpperScatter(inv.UinvByColumn())
		}
	} else {
		s.applyUpperSweep(f32)
		s.odense = true
	}

	// Leave the workspace zero for the next call by support list.
	for _, r := range s.wsup {
		ws[r] = 0
		wmark[r] = false
	}
	ws[n] = 0 // trash row: padding wrote only zeros, but stay exact
	return s.out[:n], sup
}

// applyUpperScatter accumulates out += ws[j] * (U^{-1} column j) over the
// workspace support in ascending column order — the same per-row
// summation order as the row sweep, so the two applies are bit-identical
// on every written row. Returns the rows written.
func (s *SparseSolver) applyUpperScatter(uCol *sparse.CSC) []int {
	n := s.inv.N
	wsup := s.wsup
	// The scatter must walk columns ascending; a small solve against a
	// large factor must not pay an O(n) sweep here.
	if PreferFlagScan(len(wsup), n) {
		wsup = wsup[:0]
		for r := 0; r < n; r++ {
			if s.wmark[r] {
				wsup = append(wsup, r)
			}
		}
		s.wsup = wsup
	} else {
		sort.Ints(wsup)
	}
	out, omark, osup := s.out, s.omark, s.osup[:0]
	// Honour a baked Remap here too (the blocked strips carry it
	// pre-applied; this scalar fallback applies it per entry), so both
	// scatter forms and the sweep agree on the output domain.
	remap := s.inv.Remap
	for _, j := range wsup {
		x := s.ws[j]
		lo, hi := uCol.ColPtr[j], uCol.ColPtr[j+1]
		rows := uCol.RowIdx[lo:hi]
		vals := uCol.Val[lo:hi]
		vals = vals[:len(rows)] // hint: drops the vals[k] bounds check
		for k, r := range rows {
			if remap != nil {
				r = remap[r]
			}
			if !omark[r] {
				omark[r] = true
				osup = append(osup, r)
			}
			out[r] += vals[k] * x
		}
	}
	s.osup = osup
	return osup
}

// applyUpperScatterBlocked is applyUpperScatter over the blocked strip
// form: bookkeeping walks each column's true entries, the SIMD kernel
// walks the padded strip, and — when a Remap is baked in — rows land
// directly in the caller's id domain. Value arithmetic per written row
// is the same sequence as the scalar scatter, so the two are
// bit-identical wherever both run in float64.
func (s *SparseSolver) applyUpperScatterBlocked(b *BlockedCSC, f32 bool) []int {
	n := s.inv.N
	wsup := s.wsup
	// The scatter must walk columns ascending; a small solve against a
	// large factor must not pay an O(n) sweep here.
	if PreferFlagScan(len(wsup), n) {
		wsup = wsup[:0]
		for r := 0; r < n; r++ {
			if s.wmark[r] {
				wsup = append(wsup, r)
			}
		}
		s.wsup = wsup
	} else {
		sort.Ints(wsup)
	}
	out, omark, osup := s.out, s.omark, s.osup[:0]
	var bv []float64
	var bv32 []float32
	if f32 {
		bv32 = b.Vals32()
	} else {
		bv = b.Vals
	}
	for _, j := range wsup {
		x := s.ws[j]
		lo, hi := b.ColPtr[j], b.ColPtr[j+1]
		cnt := b.ColCnt[j]
		rows := b.Rows[lo : lo+cnt]
		if int(cnt) < kernels.MinEntries {
			// Short column: one fused pass beats a kernel call.
			if f32 {
				vals := bv32[lo : lo+cnt]
				vals = vals[:len(rows)] // hint: drops the vals[k] bounds check
				for k, r := range rows {
					if !omark[r] {
						omark[r] = true
						osup = append(osup, int(r))
					}
					out[r] += float64(vals[k]) * x
				}
			} else {
				vals := bv[lo : lo+cnt]
				vals = vals[:len(rows)]
				for k, r := range rows {
					if !omark[r] {
						omark[r] = true
						osup = append(osup, int(r))
					}
					out[r] += vals[k] * x
				}
			}
			continue
		}
		for _, r := range rows {
			if !omark[r] {
				omark[r] = true
				osup = append(osup, int(r))
			}
		}
		if f32 {
			kernels.ScatterAXPY32(out, b.Rows[lo:hi], bv32[lo:hi], x)
		} else {
			kernels.ScatterAXPY(out, b.Rows[lo:hi], bv[lo:hi], x)
		}
	}
	s.osup = osup
	return osup
}

// applyUpperSweep computes out[u] = (U^{-1} row u) . ws for every row,
// the dense fallback for solves whose support reaches most of the
// factor. Rows are assigned, not accumulated, so no prior clearing is
// needed. A baked Remap redirects each assignment to the caller's id
// domain so both applies agree on where solutions live; in Float32 mode
// the stored values read through the half-width rendering, widened
// exactly before each multiply.
func (s *SparseSolver) applyUpperSweep(f32 bool) {
	inv := s.inv
	up, uc, uval := inv.Uinv.RowPtr, inv.Uinv.ColIdx, inv.Uinv.Val
	var uval32 []float32
	if f32 {
		uval32 = inv.uinvVal32()
	}
	ws, out := s.ws, s.out
	remap := inv.Remap
	for u := 0; u < inv.N; u++ {
		acc := 0.0
		if f32 {
			for p := up[u]; p < up[u+1]; p++ {
				acc += float64(uval32[p]) * ws[uc[p]]
			}
		} else {
			for p := up[u]; p < up[u+1]; p++ {
				acc += uval[p] * ws[uc[p]]
			}
		}
		d := u
		if remap != nil {
			d = remap[u]
		}
		out[d] = acc
	}
}
