package shard

// Distributed-serving seam. In coordinator mode the greedy cross-shard
// push — residual bookkeeping, commit order, cut-edge scatter, ranking —
// runs unchanged in the coordinator process, and only the pure per-shard
// factor solves are routed through a RemoteSolver to the workers owning
// the shards. Because a factor solve is a pure function of (shard,
// right-hand side) and the wire carries raw float64 bits, the
// distributed push commits exactly the bytes the single-process push
// would have: the exactness argument is "same inputs, same function,
// same order", not "close enough". The worker side of the seam is
// SolveShardSparse/SolveShardBatch below, which run the solves against
// real factors and return caller-owned copies safe to serialize after
// the pooled solver has moved on.

import (
	"fmt"
	"sync"

	"kdash/internal/core"
)

// RemoteSolver routes per-shard factor solves to remote workers. An
// implementation must be safe for concurrent calls (the speculative
// parallel push solves several shards at once), must not retain idx,
// val or rhs after returning, and must return results that stay valid
// indefinitely (freshly allocated, not pooled). SolveSparse returns the
// solution over a partLen-sized vector plus the solver's first-touch
// support (nil for a dense solve), exactly like core.SparseSolver;
// SolveBatch mirrors core.BatchSolver.SolveOn's per-chunk shared-support
// shape.
type RemoteSolver interface {
	SolveSparse(si int, idx []int, val []float64) (y []float64, ysup []int, err error)
	SolveBatch(si int, rhs [][]float64) (ys [][]float64, sups [][]int, err error)
}

// SetRemoteSolver routes every factor solve through r (nil restores
// local solving). Set it before serving queries; it is not carried
// across Apply — bind a fresh solver on each successor epoch.
func (sx *ShardedIndex) SetRemoteSolver(r RemoteSolver) { sx.remote = r }

// SetFactorless marks the index coordinator-side: shard rebuilds under
// Apply skip the factorization entirely (p.ix stays nil), keeping only
// the placement map, cut lists and graph snapshot the push bookkeeping
// needs. Only valid together with SetRemoteSolver on an index whose
// shard files were opened lazily — with factors absent, any local solve
// would fault.
func (sx *ShardedIndex) SetFactorless() { sx.factorless = true }

// PartLen reports shard si's solve dimension: owned nodes plus the
// ghost sink row when the shard has outgoing cut weight.
func (sx *ShardedIndex) PartLen(si int) int { return sx.partLen(si) }

// ShardNodes reports the number of owned nodes in shard si (PartLen
// minus the ghost sink row).
func (sx *ShardedIndex) ShardNodes(si int) int { return len(sx.parts[si].nodes) }

// remotePools lazily sizes the per-part solver pools backing the worker
// RPC surface.
func (sx *ShardedIndex) remotePools() {
	sx.rpoolOnce.Do(func() {
		sx.rsparse = make([]sync.Pool, len(sx.parts))
		sx.rbatch = make([]sync.Pool, len(sx.parts))
	})
}

// remoteSparseSolver checks a single-lane solver for shard si out of the
// worker-surface pool, creating one on first use.
//
//kdash:pooled
func (sx *ShardedIndex) remoteSparseSolver(si int) *core.SparseSolver {
	if sl, ok := sx.rsparse[si].Get().(*core.SparseSolver); ok {
		return sl
	}
	return sx.parts[si].index().NewSparseSolver()
}

// remoteBatchSolver checks a block solver for shard si out of the
// worker-surface pool, creating one on first use.
//
//kdash:pooled
func (sx *ShardedIndex) remoteBatchSolver(si int) *core.BatchSolver {
	if sl, ok := sx.rbatch[si].Get().(*core.BatchSolver); ok {
		return sl
	}
	return sx.parts[si].index().NewBatchSolver()
}

// SolveShardSparse is the worker side of RemoteSolver.SolveSparse: one
// single-lane solve against shard si's real factors through a pooled
// solver. The returned slices are caller-owned copies — for a sparse
// solve y is a fresh partLen-sized vector written only on the support
// (rows outside it are zero, and by the SolveSparse contract never
// read), for a dense solve ysup is nil and all of y is meaningful. Safe
// for concurrent calls.
func (sx *ShardedIndex) SolveShardSparse(si int, idx []int, val []float64) ([]float64, []int, error) {
	if si < 0 || si >= len(sx.parts) {
		return nil, nil, fmt.Errorf("shard: solve shard %d outside [0,%d)", si, len(sx.parts))
	}
	sx.remotePools()
	sl := sx.remoteSparseSolver(si)
	y, ysup, err := sl.SolveSparse(idx, val)
	if err != nil {
		sx.rsparse[si].Put(sl)
		return nil, nil, err
	}
	n := sx.partLen(si)
	var yc []float64
	var supc []int
	if ysup == nil {
		yc = append(make([]float64, 0, n), y[:n]...)
	} else {
		yc = make([]float64, n)
		supc = append(make([]int, 0, len(ysup)), ysup...)
		for _, lv := range ysup {
			yc[lv] = y[lv]
		}
	}
	sx.rsparse[si].Put(sl)
	return yc, supc, nil
}

// SolveShardBatch is the worker side of RemoteSolver.SolveBatch: one
// multi-lane block solve against shard si's real factors through a
// pooled solver, preserving SolveOn's chunk structure (sups carries
// entries at core.BlockWidth chunk starts). Like SolveShardSparse the
// results are caller-owned copies; lanes of a support chunk are written
// only on the chunk's shared support. Safe for concurrent calls.
func (sx *ShardedIndex) SolveShardBatch(si int, rhs [][]float64) ([][]float64, [][]int, error) {
	if si < 0 || si >= len(sx.parts) {
		return nil, nil, fmt.Errorf("shard: solve shard %d outside [0,%d)", si, len(sx.parts))
	}
	sx.remotePools()
	sl := sx.remoteBatchSolver(si)
	ys, sups, err := sl.SolveOn(rhs)
	if err != nil {
		sx.rbatch[si].Put(sl)
		return nil, nil, err
	}
	n := sx.partLen(si)
	ysC := make([][]float64, len(ys))
	supsC := make([][]int, len(ys))
	for g0 := 0; g0 < len(ys); g0 += core.BlockWidth {
		g1 := g0 + core.BlockWidth
		if g1 > len(ys) {
			g1 = len(ys)
		}
		if sup := sups[g0]; sup != nil {
			supsC[g0] = append(make([]int, 0, len(sup)), sup...)
			for j := g0; j < g1; j++ {
				lane := make([]float64, n)
				for _, lv := range sup {
					lane[lv] = ys[j][lv]
				}
				ysC[j] = lane
			}
		} else {
			for j := g0; j < g1; j++ {
				ysC[j] = append(make([]float64, 0, n), ys[j][:n]...)
			}
		}
	}
	sx.rbatch[si].Put(sl)
	return ysC, supsC, nil
}
