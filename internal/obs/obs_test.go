package obs

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketInvariants checks the (lo, hi] bucket contract over the
// whole value domain: every value lands in a bucket whose bound is >=
// the value and whose predecessor's bound is < the value.
func TestBucketInvariants(t *testing.T) {
	check := func(v int64) {
		t.Helper()
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d outside [0,%d)", v, i, NumBuckets)
		}
		if hi := BucketBound(i); v > hi && i != NumBuckets-1 {
			t.Fatalf("value %d above its bucket %d bound %d", v, i, hi)
		}
		if i > 0 {
			if lo := BucketBound(i - 1); v <= lo {
				t.Fatalf("value %d not above bucket %d's lower bound %d", v, i, lo)
			}
		}
	}
	for v := int64(0); v < 5000; v++ {
		check(v)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		check(rng.Int63n(int64(70 * time.Second)))
	}
	// Exact powers of two (above the linear-to-log transition bucket)
	// are bucket boundaries: they must land in the bucket whose upper
	// bound they are.
	for oct := 5; oct <= 34; oct++ {
		v := int64(1) << oct
		if got := BucketBound(bucketIndex(v)); got != v {
			t.Errorf("2^%d: bucket bound %d, want exactly %d", oct, got, v)
		}
	}
	// Bounds are strictly increasing.
	for i := 1; i < NumBuckets; i++ {
		if BucketBound(i) <= BucketBound(i-1) {
			t.Fatalf("bounds not increasing at %d: %d <= %d", i, BucketBound(i), BucketBound(i-1))
		}
	}
}

// TestBucketRelativeError: above the linear region, bucket width stays
// within 12.5% of the value (8 sub-buckets per octave).
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		v := 16 + rng.Int63n(int64(time.Minute))
		idx := bucketIndex(v)
		lo, hi := BucketBound(idx-1), BucketBound(idx)
		if width := float64(hi - lo); width > 0.125*float64(v)+1 {
			t.Fatalf("value %d: bucket width %d exceeds 12.5%%", v, hi-lo)
		}
	}
}

// TestMergeProperty: two histograms observing disjoint halves of a
// value stream merge into exactly the snapshot of one histogram that
// observed everything.
func TestMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var a, b, all Histogram
	for i := 0; i < 50000; i++ {
		v := rng.Int63n(int64(10 * time.Second))
		all.ObserveNS(v)
		if i%2 == 0 {
			a.ObserveNS(v)
		} else {
			b.ObserveNS(v)
		}
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	want := all.Snapshot()
	if merged.Count != want.Count || merged.SumNS != want.SumNS {
		t.Fatalf("merged count/sum = %d/%d, want %d/%d", merged.Count, merged.SumNS, want.Count, want.SumNS)
	}
	for i := range want.Counts {
		if merged.Counts[i] != want.Counts[i] {
			t.Fatalf("bucket %d: merged %d, want %d", i, merged.Counts[i], want.Counts[i])
		}
	}
	// Merging into a zero-value snapshot works too.
	var zero Snapshot
	zero.Merge(want)
	if zero.Count != want.Count {
		t.Fatalf("merge into zero snapshot lost counts")
	}
}

// TestQuantiles: against a known uniform stream, the interpolated
// quantiles must land within the bucket resolution of the true values.
func TestQuantiles(t *testing.T) {
	var h Histogram
	const n = 100000
	for i := 1; i <= n; i++ {
		h.ObserveNS(int64(i) * 1000) // 1µs .. 100ms uniform
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, tc := range []struct {
		q    float64
		want float64 // true quantile in ns
	}{{0.5, 50e6}, {0.99, 99e6}, {0.999, 99.9e6}} {
		got := float64(s.Quantile(tc.q))
		if rel := abs(got-tc.want) / tc.want; rel > 0.13 {
			t.Errorf("q%.3f = %.0fns, want ~%.0fns (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
	if q := (Snapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot quantile = %d, want 0", q)
	}
	if m := s.Mean(); abs(m-50e6)/50e6 > 0.01 {
		t.Errorf("mean = %.0f, want ~50e6", m)
	}
}

// TestConcurrentObserve hammers one histogram from many goroutines and
// checks no observation is lost (each counter is atomic); run under
// -race in CI this is also the data-race check.
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.ObserveNS(rng.Int63n(int64(time.Second)))
			}
		}(int64(w))
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
}

// TestObserveClampsNegative: a negative duration (clock weirdness)
// lands in bucket 0 instead of corrupting the index.
func TestObserveClampsNegative(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Millisecond)
	h.ObserveNS(-1)
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 2 {
		t.Fatalf("negative observations: count=%d bucket0=%d, want 2/2", s.Count, s.Counts[0])
	}
	if s.SumNS != 0 {
		t.Fatalf("negative observations summed to %d, want 0", s.SumNS)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
