package experiments

import (
	"strings"
	"testing"
)

// TestColdStartShape runs the cold-start experiment on a small graph
// and checks its structural invariants: one row per load mode plus the
// build baseline, every mode bit-identical to the built index, and the
// mmap mode no slower to first query than the legacy parse.
func TestColdStartShape(t *testing.T) {
	rows, err := ColdStart(Config{Queries: 4, Seed: 2, ShardGraphN: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	wantModes := []string{"v2-parse", "v3-copy", "v3-mmap", "build"}
	for i, r := range rows {
		if r.Mode != wantModes[i] {
			t.Fatalf("row %d mode %q, want %q", i, r.Mode, wantModes[i])
		}
		if !r.Exact {
			t.Fatalf("mode %s answered differently from the built index", r.Mode)
		}
		if r.OpenToFirstQuery <= 0 {
			t.Fatalf("mode %s reports non-positive open-to-first-query", r.Mode)
		}
	}
	parse, mmap := rows[0], rows[2]
	if mmap.OpenToFirstQuery > parse.OpenToFirstQuery {
		t.Fatalf("mmap open-to-first-query %v slower than parse %v", mmap.OpenToFirstQuery, parse.OpenToFirstQuery)
	}
	if parse.SpeedupVsParse != 1.0 {
		t.Fatalf("parse row speedup = %v, want 1.0", parse.SpeedupVsParse)
	}

	var sb strings.Builder
	WriteColdStartRows(&sb, rows)
	out := sb.String()
	for _, mode := range wantModes {
		if !strings.Contains(out, mode) {
			t.Fatalf("table output missing mode %s:\n%s", mode, out)
		}
	}
}
