// Package framework is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that kdashvet's analyzers
// are written against. The repo is intentionally module-dependency-free
// (tier-1 builds must work offline), so instead of importing x/tools we
// keep the same Analyzer/Pass shape on top of the standard library's
// go/ast and go/types, and let the drivers (standalone `go list -export`
// loader and the `go vet -vettool` unitchecker protocol) supply the
// type-checked packages.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. The Run function inspects a
// single type-checked package and reports diagnostics through the pass.
type Analyzer struct {
	// Name is the analyzer's identifier: the token used in
	// //kdash:allow(<name>) suppressions and diagnostic prefixes.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// NewInfo returns a types.Info with every map the analyzers consult
// populated, ready to pass to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
