package core

import (
	"bytes"
	"math"
	"testing"

	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/testutil"
)

func TestRebuildEmptyDeltaIsBitIdentical(t *testing.T) {
	g := testutil.PowerLaw(120, 3)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := ix.Rebuild(g.NewDelta())
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Epoch() != 1 || ix.Epoch() != 0 {
		t.Fatalf("epochs: old %d new %d", ix.Epoch(), ix2.Epoch())
	}
	for q := 0; q < g.N(); q += 17 {
		want, _, err := ix.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := ix2.TopK(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("q=%d: %d vs %d results", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d i=%d: %v vs %v", q, i, got[i], want[i])
			}
		}
	}
}

func TestRebuildTracksDelta(t *testing.T) {
	g := testutil.Clustered(90, 3, 5)
	ix, err := BuildIndex(g, BuildOptions{Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := g.NewDelta()
	hub := d.AddNode()
	for u := 0; u < 6; u++ {
		if err := d.AddEdge(hub, u*7, 1); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(u*7, hub, 2); err != nil {
			t.Fatal(err)
		}
	}
	next, stats, err := ix.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	ix2 := next.(*Index)
	if ix2.N() != 91 {
		t.Fatalf("rebuilt n=%d, want 91", ix2.N())
	}
	if stats.EdgesAdded != 12 || stats.NodesAdded != 1 || !stats.FullRebuild || stats.Epoch != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	// The rebuilt index answers exactly like the iterative oracle on the
	// updated graph.
	g2 := ix2.Graph()
	for _, q := range []int{hub, 0, 44} {
		got, _, err := ix2.TopK(q, 6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rwr.TopK(g2.ColumnNormalized(), q, 6, ix2.Restart())
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("q=%d i=%d: %v vs oracle %v", q, i, got[i], want[i])
			}
		}
	}
	// The old epoch still answers on the old graph shape.
	if _, _, err := ix.TopK(90, 3); err == nil {
		t.Error("old epoch accepted a node it does not have")
	}
}

func TestLoadedIndexIsNotUpdatable(t *testing.T) {
	g := testutil.ErdosRenyi(30, 120, 2)
	ix, err := BuildIndex(g, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph() != nil {
		t.Error("loaded index claims a source graph")
	}
	if _, err := loaded.Rebuild(g.NewDelta()); err == nil {
		t.Error("loaded index accepted Rebuild")
	}
}
