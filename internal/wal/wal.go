// Package wal implements the engine's write-ahead update log: an
// append-only, CRC-32C-framed record log split across rotating segment
// files. POST /update acks after a record lands here (microseconds)
// instead of after the delta's refactorization (milliseconds); a
// background compactor later drains the logged batches through the
// incremental index update path and truncates the segments it has made
// durable elsewhere.
//
// Each segment file starts with an 8-byte magic and carries a sequence
// of length-prefixed records:
//
//	[4 bytes payload length LE] [4 bytes CRC-32C(payload) LE] [payload]
//	payload = [8 bytes sequence number LE] [record body]
//
// Sequence numbers are assigned by Append, strictly increasing by one
// across the whole log. Segment files are named wal-<first seq, 16 hex
// digits>.log, so lexical order is replay order and the first sequence
// number of a segment is known without opening it.
//
// Durability is a policy choice (Options.Sync): SyncAlways fsyncs
// before every Append returns, SyncInterval (the default) acks from the
// OS page cache and fsyncs on a short timer — bounding loss on power
// failure to the last interval while keeping acks at write() cost — and
// SyncNone leaves flushing entirely to the OS. Process crashes lose
// nothing under any policy; only power loss can eat an unsynced tail.
//
// Recovery (Open) scans every segment, verifies framing and CRCs, and
// truncates a torn tail: the first invalid record ends the log — the
// file is truncated at the last whole record and any later segments are
// quarantined (renamed *.corrupt), never silently replayed past a gap.
// Replay then hands the surviving records back in order.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when Append data reaches stable storage.
type SyncPolicy int

const (
	// SyncInterval (the default) acknowledges appends from the OS page
	// cache and fsyncs on the Options.SyncEvery timer: acks cost one
	// write(), and at most the last interval's records are exposed to
	// power loss (process crashes lose nothing).
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before every Append returns: full durability,
	// acks pay the device sync latency.
	SyncAlways
	// SyncNone never fsyncs; the OS flushes when it pleases.
	SyncNone
)

// ParseSyncPolicy maps the -wal-fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf(`wal: unknown fsync policy %q (want "always", "interval" or "none")`, s)
}

// String names the policy as ParseSyncPolicy spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "interval"
}

// Options configures a Log.
type Options struct {
	// Sync is the durability policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval flush period (default 2ms).
	SyncEvery time.Duration
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Rotation bounds what one truncation can reclaim
	// and what one torn tail can cost.
	SegmentBytes int64
}

// DefaultSyncEvery is the SyncInterval flush period when Options leaves
// it zero.
const DefaultSyncEvery = 2 * time.Millisecond

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 4 << 20

// segMagic opens every segment file. The trailing digit versions the
// framing; readers reject anything else.
const segMagic = "KDWAL\x00\x001"

// maxRecordBytes bounds one record's payload: far above any delta the
// HTTP layer accepts (its body cap is 8 MiB), low enough that a corrupt
// length prefix cannot drive a huge allocation.
const maxRecordBytes = 64 << 20

// frameHeaderLen is the per-record framing overhead: length + CRC.
const frameHeaderLen = 8

// payloadOverhead is the sequence number inside each payload.
const payloadOverhead = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	LastSeq      uint64 // highest sequence number ever appended (or recovered)
	Appends      int64  // records appended this process
	Fsyncs       int64  // fsync calls issued
	Rotations    int64  // segment rotations
	Segments     int    // live segment files, active included
	Bytes        int64  // bytes across live segment files
	Truncations  int64  // TruncateThrough calls that deleted at least one segment
	SegmentsFree int64  // segment files deleted by truncation

	// Recovery outcome of Open.
	RecoveredRecords int   // valid records found on open
	TornBytesDropped int64 // bytes cut off the last valid segment's tail
	SegmentsCorrupt  int   // later segments quarantined (*.corrupt) after a bad record
}

// segment is one live log file.
type segment struct {
	name  string
	first uint64 // sequence number of its first record (from the file name)
	last  uint64 // highest record it holds; first-1 when empty
	size  int64
}

// Log is an open write-ahead log directory. All methods are safe for
// concurrent use; Append serialises internally.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	active   *os.File
	segments []segment // ascending by first; the last entry is active
	lastSeq  uint64
	dirty    bool  // unsynced appends outstanding (SyncInterval)
	syncErr  error // sticky first fsync/write failure: the log is dead
	closed   bool
	scratch  []byte

	stats Stats

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the log directory, recovers its
// segments — verifying every record, truncating a torn tail and
// quarantining anything after it — and positions the log for appending.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = DefaultSyncEvery
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating log directory: %w", err)
	}
	l := &Log{dir: dir, opt: opt, stop: make(chan struct{}), done: make(chan struct{})}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	if opt.Sync == SyncInterval {
		go l.syncLoop()
	} else {
		close(l.done)
	}
	return l, nil
}

// segmentName formats the file name of a segment whose first record
// will carry seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("wal-%016x.log", seq)
}

// parseSegmentName extracts the first sequence number from a segment
// file name, reporting ok=false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// recover scans the directory's segments in order, validating records
// and truncating/quarantining at the first corruption.
func (l *Log) recover() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: reading log directory: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segment{name: e.Name(), first: first})
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].first < segs[b].first })

	broken := -1 // index of the first segment with a corruption
	for i := range segs {
		s := &segs[i]
		res, err := scanSegment(filepath.Join(l.dir, s.name), s.first)
		if err != nil {
			return err
		}
		s.size = res.validBytes
		s.last = res.lastSeq
		l.stats.RecoveredRecords += res.records
		if res.tornBytes > 0 {
			// Torn or corrupt tail: cut the file back to its last whole
			// record. Everything after this point — in this file and any
			// later segment — is unreachable past the gap.
			if err := os.Truncate(filepath.Join(l.dir, s.name), res.validBytes); err != nil {
				return fmt.Errorf("wal: truncating torn tail of %s: %w", s.name, err)
			}
			l.stats.TornBytesDropped += res.tornBytes
			broken = i
			break
		}
		if i > 0 && s.first != segs[i-1].last+1 {
			// A hole between segments (a deleted or renamed file): replaying
			// across it would silently skip acknowledged updates.
			return fmt.Errorf("wal: segment %s starts at seq %d, previous ends at %d", s.name, s.first, segs[i-1].last)
		}
	}
	if broken >= 0 {
		for _, s := range segs[broken+1:] {
			old := filepath.Join(l.dir, s.name)
			if err := os.Rename(old, old+".corrupt"); err != nil {
				return fmt.Errorf("wal: quarantining %s: %w", s.name, err)
			}
			l.stats.SegmentsCorrupt++
		}
		segs = segs[:broken+1]
	}
	l.segments = segs
	l.lastSeq = 0
	if n := len(segs); n > 0 {
		l.lastSeq = segs[n-1].last
	}
	return nil
}

// scanResult is one segment's validation outcome.
type scanResult struct {
	records    int
	lastSeq    uint64 // last valid record's seq; first-1 when none
	validBytes int64  // offset of the first invalid byte (file length when clean)
	tornBytes  int64  // bytes past validBytes (0 when clean)
}

// scanSegment walks one segment file record by record, stopping at the
// first invalid frame. A file too short for its magic, or carrying the
// wrong magic, counts as fully torn (validBytes 0) — recovery truncates
// it to nothing rather than guessing at foreign bytes.
func scanSegment(path string, first uint64) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
	}
	res := scanResult{lastSeq: first - 1}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		res.tornBytes = int64(len(data))
		return res, nil
	}
	off := int64(len(segMagic))
	want := first
	for {
		rest := data[off:]
		if len(rest) == 0 {
			break // clean end
		}
		if len(rest) < frameHeaderLen {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length < payloadOverhead || length > maxRecordBytes || int(length) > len(rest)-frameHeaderLen {
			break // impossible or torn payload
		}
		payload := rest[frameHeaderLen : frameHeaderLen+int(length)]
		if crc32.Checksum(payload, castagnoli) != crc {
			break // corrupt payload
		}
		seq := binary.LittleEndian.Uint64(payload[:8])
		if seq != want {
			break // sequence discontinuity: do not replay past it
		}
		res.records++
		res.lastSeq = seq
		want = seq + 1
		off += frameHeaderLen + int64(length)
	}
	res.validBytes = off
	res.tornBytes = int64(len(data)) - off
	return res, nil
}

// openActive opens the last segment for appending, creating a fresh one
// when the directory is empty.
func (l *Log) openActive() error {
	if len(l.segments) == 0 {
		return l.newSegmentLocked(l.lastSeq + 1)
	}
	s := &l.segments[len(l.segments)-1]
	f, err := os.OpenFile(filepath.Join(l.dir, s.name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: opening active segment: %w", err)
	}
	if s.size < int64(len(segMagic)) {
		// Recovery truncated the segment to nothing (its magic itself was
		// torn or foreign); restore the header or later appends would be
		// unrecoverable.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			f.Close()
			return fmt.Errorf("wal: rewriting segment magic: %w", err)
		}
		s.size = int64(len(segMagic))
	}
	l.active = f
	return nil
}

// newSegmentLocked creates and activates a fresh segment whose first
// record will carry seq. Callers hold l.mu (or are inside Open).
func (l *Log) newSegmentLocked(seq uint64) error {
	name := segmentName(seq)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment magic: %w", err)
	}
	l.active = f
	l.segments = append(l.segments, segment{name: name, first: seq, last: seq - 1, size: int64(len(segMagic))})
	l.syncDir()
	return nil
}

// rotateLocked seals the active segment and starts a new one.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.stats.Fsyncs++
	if err := l.active.Close(); err != nil {
		return err
	}
	l.stats.Rotations++
	return l.newSegmentLocked(l.lastSeq + 1)
}

// Append frames body as the next record, writes it to the active
// segment and returns its sequence number. Durability at return time
// follows Options.Sync. A write or sync failure is sticky: the log
// refuses every later append, because acknowledging past a hole would
// break replay's continuity guarantee.
func (l *Log) Append(body []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.syncErr != nil {
		return 0, fmt.Errorf("wal: log failed earlier: %w", l.syncErr)
	}
	if int64(len(body))+payloadOverhead > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(body), maxRecordBytes)
	}
	s := &l.segments[len(l.segments)-1]
	if s.size > int64(len(segMagic)) && s.size+frameHeaderLen+payloadOverhead+int64(len(body)) > l.opt.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.syncErr = err
			return 0, fmt.Errorf("wal: rotating segment: %w", err)
		}
		s = &l.segments[len(l.segments)-1]
	}
	seq := l.lastSeq + 1
	frame := l.scratch[:0]
	frame = binary.LittleEndian.AppendUint32(frame, uint32(payloadOverhead+len(body)))
	frame = append(frame, 0, 0, 0, 0) // CRC back-filled below
	frame = binary.LittleEndian.AppendUint64(frame, seq)
	frame = append(frame, body...)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameHeaderLen:], castagnoli))
	l.scratch = frame
	if _, err := l.active.Write(frame); err != nil {
		l.syncErr = err
		return 0, fmt.Errorf("wal: appending record: %w", err)
	}
	s.size += int64(len(frame))
	s.last = seq
	l.lastSeq = seq
	l.stats.Appends++
	switch l.opt.Sync {
	case SyncAlways:
		if err := l.active.Sync(); err != nil {
			l.syncErr = err
			return 0, fmt.Errorf("wal: syncing record: %w", err)
		}
		l.stats.Fsyncs++
	case SyncInterval:
		l.dirty = true
	}
	return seq, nil
}

// syncLoop is the SyncInterval flusher: every SyncEvery it fsyncs the
// active segment if appends landed since the last flush.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opt.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.syncErr == nil && !l.closed {
				if err := l.active.Sync(); err != nil {
					l.syncErr = err
				} else {
					l.stats.Fsyncs++
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// Sync forces an fsync of the active segment now, whatever the policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.syncErr = err
		return err
	}
	l.stats.Fsyncs++
	l.dirty = false
	return nil
}

// Replay invokes fn for every recovered record with seq > after, in
// sequence order. It re-reads the segment files, so it reflects exactly
// what a restart would see; call it before appending in earnest (the
// log holds its lock for the duration).
//
//kdash:deterministic
func (l *Log) Replay(after uint64, fn func(seq uint64, body []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.segments {
		if s.last <= after || s.last < s.first {
			continue
		}
		data, err := os.ReadFile(filepath.Join(l.dir, s.name))
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", s.name, err)
		}
		off := int64(len(segMagic))
		for off < int64(len(data)) {
			rest := data[off:]
			if len(rest) < frameHeaderLen {
				break
			}
			length := binary.LittleEndian.Uint32(rest[0:4])
			if int(length) > len(rest)-frameHeaderLen {
				break
			}
			payload := rest[frameHeaderLen : frameHeaderLen+int(length)]
			seq := binary.LittleEndian.Uint64(payload[:8])
			if seq > after {
				if err := fn(seq, payload[8:]); err != nil {
					return err
				}
			}
			off += frameHeaderLen + int64(length)
		}
	}
	return nil
}

// TruncateThrough deletes every segment whose records are all <= seq —
// they have been made durable elsewhere (compacted into a published
// epoch, or persisted in a snapshot). When the active segment itself is
// fully covered it is sealed and replaced by a fresh one first, so the
// log directory shrinks back to one near-empty file after a full
// compaction.
func (l *Log) TruncateThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if n := len(l.segments); l.segments[n-1].last <= seq && l.segments[n-1].size > int64(len(segMagic)) {
		if err := l.rotateLocked(); err != nil {
			l.syncErr = err
			return fmt.Errorf("wal: rotating before truncation: %w", err)
		}
	}
	kept := l.segments[:0]
	deleted := false
	for i, s := range l.segments {
		// Never delete the active (final) segment.
		if i == len(l.segments)-1 || s.last > seq {
			kept = append(kept, s)
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
			return fmt.Errorf("wal: deleting compacted segment: %w", err)
		}
		l.stats.SegmentsFree++
		deleted = true
	}
	l.segments = kept
	if deleted {
		l.stats.Truncations++
		l.syncDir()
	}
	return nil
}

// syncDir fsyncs the log directory so segment creations and deletions
// are themselves durable. Best-effort: some filesystems reject
// directory fsync, and the cost of a lost rename is a re-recovery.
func (l *Log) syncDir() {
	if d, err := os.Open(l.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// LastSeq reports the highest sequence number appended or recovered.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.LastSeq = l.lastSeq
	st.Segments = len(l.segments)
	st.Bytes = 0
	for _, s := range l.segments {
		st.Bytes += s.size
	}
	return st
}

// Dir reports the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// SegmentNames lists the live segment files in replay order, the
// reference a manifest snapshot records alongside its WAL position.
func (l *Log) SegmentNames() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, len(l.segments))
	for i, s := range l.segments {
		names[i] = s.name
	}
	return names
}

// Close flushes and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var err error
	if l.active != nil {
		if l.dirty && l.syncErr == nil {
			if serr := l.active.Sync(); serr != nil {
				err = serr
			} else {
				l.stats.Fsyncs++
			}
		}
		if cerr := l.active.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	l.mu.Unlock()
	close(l.stop)
	<-l.done
	return err
}
