package shard

// Pooled per-query push state. The single-query cross-shard push used to
// allocate two O(n_shard) vectors per shard per query and wipe them
// wholesale; pushState keeps every vector a query needs — accumulated
// solution, residuals, their touched-entry lists, and one single-lane
// sparse solver per shard — alive across queries in a sync.Pool on the
// ShardedIndex. Queries check a private instance out (concurrent-safe:
// the pool hands each request its own state), run, and return it after
// spot-cleaning exactly the entries they touched, so the steady-state
// query path allocates only its O(k) result set.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"kdash/internal/core"
	"kdash/internal/obs"
	"kdash/internal/topk"
)

// pushState is the complete state of one single-query push. The
// invariant between queries: every vector is all-zero, every support
// list empty, every flag false — maintained by release() spot-cleaning
// the touched entries, never by full-vector zeroing.
type pushState struct {
	sx *ShardedIndex

	// Accumulated solution per shard over owned nodes (no ghost sink row;
	// sink mass is absorbed, never ranked). x[si] is allocated the first
	// time this instance solves shard si and reused afterwards.
	x      [][]float64
	xmark  [][]bool
	xsup   [][]int // touched solution entries (local ids), per shard
	xdense []bool  // a dense-fallback solve wrote the whole shard this query

	// Residual right-hand sides per shard over partLen rows.
	res     [][]float64
	rmark   [][]bool
	rsup    [][]int // touched residual entries (local ids), per shard
	resMass []float64

	solved  []bool // shard solved at least once this query
	solvers []*core.SparseSolver

	// Sorted sparse right-hand side scratch for the per-shard solves.
	rhsIdx []int
	rhsVal []float64

	// rver counts residual writes per shard this query — the version
	// stamp the speculative parallel push validates cached solves
	// against (see runParallel). Allocated on the first parallel run;
	// nil on the sequential path, which never reads it.
	rver []uint64

	// Speculative-push state (see parallel.go), allocated alongside rver
	// on the first parallel run and nil for sequential-only states: one
	// private solver per shard for background solves, the per-shard
	// right-hand-side snapshots handed to workers, the residual version
	// each snapshot was taken at, the workers' results, and the slot
	// lifecycle (idle/pending/done) with its completion channel.
	specSolvers  []*core.SparseSolver
	specIdx      [][]int
	specVal      [][]float64
	specVer      []uint64
	specY        [][]float64
	specSup      [][]int
	specErr      []error
	specState    []uint8
	specCh       chan int
	specInFlight int

	initial float64 // total seeded mass this query

	// Per-query opt-ins, set by the caller after checkout and cleared
	// by release. Both nil on the hot path: every use is gated on the
	// pointer, so disabled queries pay a branch, not an allocation or a
	// clock read.
	ctx context.Context // cancellation, checked between shard solves
	tr  *obs.QueryTrace // trace recorder
}

func newPushState(sx *ShardedIndex) *pushState {
	s := len(sx.parts)
	return &pushState{
		sx:      sx,
		x:       make([][]float64, s),
		xmark:   make([][]bool, s),
		xsup:    make([][]int, s),
		xdense:  make([]bool, s),
		res:     make([][]float64, s),
		rmark:   make([][]bool, s),
		rsup:    make([][]int, s),
		resMass: make([]float64, s),
		solved:  make([]bool, s),
		solvers: make([]*core.SparseSolver, s),
	}
}

// getPushState checks clean per-query push state out of the pool.
//
//kdash:pooled
func (sx *ShardedIndex) getPushState() *pushState {
	if st, ok := sx.pushPool.Get().(*pushState); ok {
		return st
	}
	return newPushState(sx)
}

// putPushState restores the all-zero invariant and returns the state to
// the pool. The state's vectors and supports must not be read afterwards.
//
//kdash:release
func (sx *ShardedIndex) putPushState(st *pushState) {
	st.release()
	sx.pushPool.Put(st)
}

// seed adds restart mass m (already scaled by c) at global node g.
//
//kdash:noalloc
func (st *pushState) seed(g int, m float64) {
	st.addRes(st.sx.home[g], st.sx.local[g], m)
	st.initial += m
}

// addRes adds residual mass at (shard si, local row lv), recording the
// touch so consumption and cleanup iterate only written entries.
//
//kdash:noalloc
func (st *pushState) addRes(si, lv int, m float64) {
	if st.res[si] == nil {
		n := st.sx.partLen(si)
		st.res[si] = make([]float64, n) //kdash:allow(hotalloc) first touch of a shard sizes its residual vectors once per pooled state
		st.rmark[si] = make([]bool, n)  //kdash:allow(hotalloc) paired first-touch sizing
	}
	if !st.rmark[si][lv] {
		st.rmark[si][lv] = true
		st.rsup[si] = append(st.rsup[si], lv)
	}
	st.res[si][lv] += m
	st.resMass[si] += m
	if st.rver != nil {
		st.rver[si]++
	}
}

// run drives the push to convergence (see pushWeighted for the weighting
// contract) and reports the query's work. Per iteration the shard with
// the most pending (weighted) mass is solved through its pooled
// single-lane sparse solver, and only the solve's returned support is
// accumulated and scattered. A cancelled context (checked between shard
// solves, never per node) abandons the push with the context's error.
//
//kdash:noalloc
//kdash:deterministic
//kdash:ctxloop
func (st *pushState) run(w []float64) (QueryStats, error) {
	sx := st.sx
	if sx.pushWorkers > 1 && st.tr == nil && len(sx.parts) > 1 {
		// Speculative parallel push: same greedy commit order, same
		// bits, background workers pre-solving the other pending
		// shards. Traced queries stay sequential — the per-solve wall
		// clocks a trace records would fold speculation wait into
		// solve time.
		return st.runParallel(w)
	}
	var qs QueryStats
	s := len(sx.parts)
	tol := sx.qtol * st.initial

	total, weighted := st.initial, st.initial
	for {
		// The totals are re-summed rather than maintained incrementally:
		// the per-shard masses are exact (assigned, not drifted), and a
		// drifted running total can float just above tolerance forever.
		best, bestMass := -1, 0.0
		total, weighted = 0, 0
		for si := 0; si < s; si++ {
			total += st.resMass[si]
			m := st.resMass[si]
			if w != nil {
				m *= w[si]
			}
			weighted += m
			if m > bestMass {
				best, bestMass = si, m
			}
		}
		if weighted <= tol || best < 0 || qs.Solves >= maxSolves {
			break
		}
		if st.ctx != nil {
			if err := st.ctx.Err(); err != nil {
				return qs, fmt.Errorf("shard: query cancelled after %d solves: %w", qs.Solves, err) //kdash:allow(hotalloc) error construction only on abandoned queries, off the steady-state path
			}
		}
		if st.tr != nil {
			if err := st.traceSolve(best, total, &qs); err != nil {
				return qs, err
			}
		} else if err := st.solveShard(best, &qs); err != nil {
			return qs, err
		}
	}
	qs.ResidualMass = total
	qs.Converged = weighted <= tol
	for si := 0; si < s; si++ {
		if st.resMass[si] > 0 && !st.solved[si] {
			qs.ShardsPruned++
		}
	}
	if tr := st.tr; tr != nil {
		tr.Solves += qs.Solves
		tr.ShardsSolved += qs.ShardsSolved
		tr.ShardsPruned += qs.ShardsPruned
		tr.NodesEvaluated += qs.NodesEvaluated
		tr.CutMassPruned += qs.ResidualMass
		tr.Converged = qs.Converged
	}
	return qs, nil
}

// traceSolve wraps one solveShard call with trace recording: the
// pending-mass snapshot before, the shard's consumed mass, the solve's
// support size and wall clock, and the total residual left after —
// the residual-bound trajectory clients see in the trace block.
func (st *pushState) traceSolve(best int, totalBefore float64, qs *QueryStats) error {
	consumed := st.resMass[best]
	evalBefore := qs.NodesEvaluated
	t0 := time.Now() //kdash:allow(determinism) wall clock feeds only the trace block, never the solve or ranking
	if err := st.solveShard(best, qs); err != nil {
		return err
	}
	d := time.Since(t0) //kdash:allow(determinism) trace-only duration
	after := 0.0
	for si := range st.resMass {
		after += st.resMass[si]
	}
	st.tr.AddStep(obs.SolveStep{
		Shard:          best,
		ResidualBefore: totalBefore,
		MassConsumed:   consumed,
		NodesEvaluated: qs.NodesEvaluated - evalBefore,
		DurationNS:     d.Nanoseconds(),
	}, after)
	return nil
}

// consumeResidual drains shard best's residual into an ascending sparse
// right-hand side in st.rhsIdx/st.rhsVal — the accumulation order the
// dense reference solve uses — zeroing the residual in the same pass
// (the solve absorbs the mass).
//
//kdash:noalloc
func (st *pushState) consumeResidual(best int) ([]int, []float64) {
	sup := st.rsup[best]
	sort.Ints(sup)
	idx, val := st.rhsIdx[:0], st.rhsVal[:0]
	rb, rm := st.res[best], st.rmark[best]
	for _, lv := range sup {
		if v := rb[lv]; v != 0 {
			idx = append(idx, lv)
			val = append(val, v)
		}
		rb[lv] = 0
		rm[lv] = false
	}
	st.rhsIdx, st.rhsVal = idx, val
	st.rsup[best] = sup[:0]
	st.resMass[best] = 0
	return idx, val
}

// solver returns shard si's pooled single-lane solver, creating it on
// first use. index() is where a lazily loaded shard file is first
// mapped: a shard is opened when a query actually solves it, never
// before.
//
//kdash:pooled
func (st *pushState) solver(si int) *core.SparseSolver {
	if st.solvers[si] == nil {
		st.solvers[si] = st.sx.parts[si].index().NewSparseSolver() //kdash:allow(hotalloc) first touch of a shard creates its solver once per pooled state
	}
	return st.solvers[si]
}

// solveShard consumes shard best's residual through the shard's sparse
// solver — or, under a RemoteSolver, through the worker owning the
// shard — accumulates the solution and scatters solved mass across the
// cut edges, all proportional to the solve's actual support. Only the
// remote path can fail: a local solve's shape is guaranteed by
// construction, but a worker can be unreachable, and that error must
// surface as an abandoned query, never a partial answer.
//
//kdash:noalloc
func (st *pushState) solveShard(best int, qs *QueryStats) error {
	idx, val := st.consumeResidual(best)
	var y []float64
	var ysup []int
	var err error
	if r := st.sx.remote; r != nil {
		y, ysup, err = r.SolveSparse(best, idx, val)
		if err != nil {
			return err
		}
	} else {
		y, ysup, err = st.solver(best).SolveSparse(idx, val)
		if err != nil {
			panic(fmt.Sprintf("shard: internal solve shape mismatch: %v", err)) //kdash:allow(hotalloc) unreachable: rhs is gathered from partLen-sized vectors
		}
	}
	st.applySolve(best, y, ysup, qs)
	return nil
}

// applySolve folds one shard solve into the push: the solution
// accumulates into x over the solve's support, and solved mass scatters
// across the cut edges into the other shards' residuals. The support is
// walked in the solver's first-touch order — the float accumulation
// order downstream residuals depend on — so a cached speculative solve
// commits bit-identically to a synchronous one.
//
//kdash:noalloc
//kdash:deterministic
func (st *pushState) applySolve(best int, y []float64, ysup []int, qs *QueryStats) {
	sx := st.sx
	p := sx.parts[best]
	qs.Solves++
	sx.solveCounters()[best].Add(1)
	if !st.solved[best] {
		st.solved[best] = true
		qs.ShardsSolved++
	}
	if st.x[best] == nil {
		st.x[best] = make([]float64, len(p.nodes))  //kdash:allow(hotalloc) first touch of a shard sizes its solution vectors once per pooled state
		st.xmark[best] = make([]bool, len(p.nodes)) //kdash:allow(hotalloc) paired first-touch sizing
	}
	xb, xm := st.x[best], st.xmark[best]
	cb := sx.cutEdgeBits()[best]
	consume := func(lv int) {
		yv := y[lv]
		if yv == 0 {
			return
		}
		xb[lv] += yv
		if !st.xdense[best] && !xm[lv] {
			xm[lv] = true
			st.xsup[best] = append(st.xsup[best], lv)
		}
		// One cache-resident bit test replaces two cutPtr loads; most
		// solved rows are interior and stop here.
		if cb[lv>>6]&(1<<(uint(lv)&63)) != 0 {
			for ci := p.cutPtr[lv]; ci < p.cutPtr[lv+1]; ci++ {
				e := p.cuts[ci]
				st.addRes(e.dstShard, e.dst, e.w*yv)
			}
		}
	}
	if ysup != nil {
		// Rows outside the support are stale in y (SolveSparse contract),
		// so only the support is read; the ghost sink's absorbed mass
		// propagates nowhere and is skipped.
		for _, lv := range ysup {
			if lv < len(p.nodes) {
				qs.NodesEvaluated++
				consume(lv)
			}
		}
	} else {
		qs.NodesEvaluated += len(p.nodes)
		st.xdense[best] = true
		for lv := range p.nodes {
			consume(lv)
		}
	}
}

// rank merges the state's accumulated solution into one exact top-k
// answer, iterating only the entries the push wrote. It allocates the
// O(k) result set and nothing else — deliberately not //kdash:noalloc.
//
//kdash:deterministic
func (st *pushState) rank(k int, exclude map[int]bool) []topk.Result {
	heap := topk.New(k)
	for si := range st.sx.parts {
		if !st.solved[si] {
			continue
		}
		nodes := st.sx.parts[si].nodes
		xb := st.x[si]
		push := func(lv int) {
			if v := xb[lv]; v > 0 {
				g := nodes[lv]
				if len(exclude) == 0 || !exclude[g] {
					heap.Push(g, v)
				}
			}
		}
		if st.xdense[si] {
			for lv := range nodes {
				push(lv)
			}
		} else {
			for _, lv := range st.xsup[si] {
				push(lv)
			}
		}
	}
	return heap.Results()
}

// materialize copies the touched solution out of the pooled state into
// caller-owned per-shard vectors (nil for unsolved shards) — the
// contract push/pushWeighted keep for callers that want raw vectors.
func (st *pushState) materialize() [][]float64 {
	out := make([][]float64, len(st.sx.parts))
	for si := range st.sx.parts {
		if !st.solved[si] {
			continue
		}
		v := make([]float64, len(st.sx.parts[si].nodes))
		if st.xdense[si] {
			copy(v, st.x[si])
		} else {
			for _, lv := range st.xsup[si] {
				v[lv] = st.x[si][lv]
			}
		}
		out[si] = v
	}
	return out
}

// release restores the all-zero invariant by spot-cleaning exactly the
// entries this query touched (one bulk clear for shards a dense solve
// wrote wholesale) and resets the per-query bookkeeping.
//
//kdash:noalloc
func (st *pushState) release() {
	for si := range st.sx.parts {
		if st.xdense[si] {
			clear(st.x[si])
			clear(st.xmark[si])
			st.xdense[si] = false
		} else if len(st.xsup[si]) > 0 {
			xb, xm := st.x[si], st.xmark[si]
			for _, lv := range st.xsup[si] {
				xb[lv] = 0
				xm[lv] = false
			}
		}
		st.xsup[si] = st.xsup[si][:0]
		if len(st.rsup[si]) > 0 {
			rb, rm := st.res[si], st.rmark[si]
			for _, lv := range st.rsup[si] {
				rb[lv] = 0
				rm[lv] = false
			}
		}
		st.rsup[si] = st.rsup[si][:0]
		st.resMass[si] = 0
		st.solved[si] = false
	}
	st.initial = 0
	st.ctx, st.tr = nil, nil
}
