package main

import (
	"testing"

	"kdash/tools/kdashvet/internal/analyzers"
	"kdash/tools/kdashvet/internal/driver"
)

// TestKdashvetClean runs the full analyzer suite over the repository and
// asserts zero findings: every invariant annotation in the tree must
// hold, and every suppression must carry a justification. A failure here
// is the same signal CI's kdashvet job produces, available via plain
// `go test`.
func TestKdashvetClean(t *testing.T) {
	pkgs, err := driver.Load("../..", []string{"kdash/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("driver.Load matched no packages")
	}
	for _, p := range pkgs {
		diags, err := driver.Run(p, analyzers.All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
