package distributed

// The acceptance harness for distributed serving: every worker here is
// a real separate OS process (the test binary re-exec'd via TestMain),
// every byte crosses loopback TCP, and every answer is compared
// bit-for-bit against an in-process oracle opened from the same index
// directory and fed the same update chain. Worker stderr goes to log
// files under KDASH_DIST_LOG_DIR (falling back to the test's temp dir)
// so CI can upload them when a run fails.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"kdash/internal/placement"
	"kdash/internal/reorder"
	"kdash/internal/rpc"
	"kdash/internal/server"
	"kdash/internal/shard"
	"kdash/internal/testutil"
	"kdash/internal/wal"
)

// TestMain doubles as the worker executable: when KDASH_WORKER_PROC is
// set, the process is a spawned worker, not a test run.
func TestMain(m *testing.M) {
	if os.Getenv("KDASH_WORKER_PROC") == "1" {
		runWorkerProc()
		return
	}
	os.Exit(m.Run())
}

// runWorkerProc is the body of a spawned worker process: open the index
// lazily, bind the requested address (retrying briefly — a restart test
// reuses the address its predecessor just released), announce readiness
// on stdout, serve until killed.
func runWorkerProc() {
	dir := os.Getenv("KDASH_WORKER_INDEX")
	addr := os.Getenv("KDASH_WORKER_ADDR")
	sx, err := shard.Open(dir, shard.LoadOptions{Lazy: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker: open %s: %v\n", dir, err)
		os.Exit(1)
	}
	var ln net.Listener
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i >= 100 {
			fmt.Fprintf(os.Stderr, "worker: listen %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("LISTEN %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "worker: serving %d nodes / %d shards (epoch %d) on %s\n",
		sx.N(), sx.Shards(), sx.Epoch(), ln.Addr())
	if err := placement.ServeWorker(ln, sx); err != nil {
		fmt.Fprintf(os.Stderr, "worker: serve: %v\n", err)
		os.Exit(1)
	}
}

// workerProc is one spawned worker process.
type workerProc struct {
	cmd  *exec.Cmd
	addr string
}

// logDir resolves where worker stderr logs land: the CI-provided
// artifact directory when set, the test's own temp dir otherwise.
func logDir(t *testing.T) string {
	if d := os.Getenv("KDASH_DIST_LOG_DIR"); d != "" {
		if err := os.MkdirAll(d, 0o755); err == nil {
			return d
		}
	}
	return t.TempDir()
}

// spawnWorker starts one worker process over dir at addr (empty addr
// picks an ephemeral port) and blocks until it announces its listening
// address. The worker is killed at test cleanup; tag names its log.
func spawnWorker(t *testing.T, dir, addr, tag string) *workerProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	logName := fmt.Sprintf("worker-%s-%s.log", strings.ReplaceAll(t.Name(), "/", "_"), tag)
	lf, err := os.Create(filepath.Join(logDir(t), logName))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"KDASH_WORKER_PROC=1",
		"KDASH_WORKER_INDEX="+dir,
		"KDASH_WORKER_ADDR="+addr)
	cmd.Stderr = lf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lf.Close()
	wp := &workerProc{cmd: cmd}
	t.Cleanup(wp.kill)

	lnc := make(chan string, 1)
	go func() {
		line, _ := bufio.NewReader(stdout).ReadString('\n')
		lnc <- strings.TrimSpace(strings.TrimPrefix(line, "LISTEN "))
	}()
	select {
	case got := <-lnc:
		if got == "" {
			t.Fatalf("worker %s exited before announcing its address (see its log)", tag)
		}
		wp.addr = got
	case <-time.After(30 * time.Second):
		t.Fatalf("worker %s never announced its address", tag)
	}
	return wp
}

// kill hard-kills the worker process (every connection dies with it)
// and reaps it. Safe to call twice.
func (wp *workerProc) kill() {
	if wp.cmd.Process != nil {
		wp.cmd.Process.Kill()
	}
	wp.cmd.Wait()
}

// buildDir builds a random sharded index and saves it for the cluster
// to share.
func buildDir(t *testing.T, rng *rand.Rand, seed int64) string {
	t.Helper()
	g := testutil.Random(rng)
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: seed, StalenessLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sx.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// spawnCluster starts n worker processes and returns their addresses.
func spawnCluster(t *testing.T, dir string, n int) ([]*workerProc, []string) {
	t.Helper()
	procs := make([]*workerProc, n)
	addrs := make([]string, n)
	for w := 0; w < n; w++ {
		procs[w] = spawnWorker(t, dir, "", fmt.Sprintf("w%d", w))
		addrs[w] = procs[w].addr
	}
	return procs, addrs
}

func sameBits(t *testing.T, ctxt string, got, want interface{}) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: distributed answer diverged\n got %+v\nwant %+v", ctxt, got, want)
	}
}

// TestDistributedDifferential is the tentpole acceptance test: real
// worker processes, randomized query/update chains, and bit-identical
// results AND per-query statistics against the in-process oracle at
// every epoch — in both the sequential and the speculative parallel
// push configuration.
func TestDistributedDifferential(t *testing.T) {
	for _, cfg := range []placement.Config{{}, {PushWorkers: 3}} {
		name := "sequential"
		if cfg.PushWorkers > 1 {
			name = fmt.Sprintf("push-workers-%d", cfg.PushWorkers)
		}
		t.Run(name, func(t *testing.T) {
			seed := int64(41)
			rng := rand.New(rand.NewSource(seed))
			dir := buildDir(t, rng, seed)
			_, addrs := spawnCluster(t, dir, 2)

			co, err := placement.NewCoordinator(dir, addrs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { co.Close() }()
			oracle, err := shard.Open(dir, shard.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}

			for round := 0; round < 3; round++ {
				if co.Epoch() != oracle.Epoch() {
					t.Fatalf("round %d: epoch %d vs oracle %d", round, co.Epoch(), oracle.Epoch())
				}
				n := co.N()
				k := 1 + rng.Intn(8)
				for i := 0; i < 3; i++ {
					q := rng.Intn(n)
					got, gqs, err := co.TopK(q, k)
					if err != nil {
						t.Fatalf("round %d TopK(%d): %v", round, q, err)
					}
					want, wqs, err := oracle.TopK(q, k)
					if err != nil {
						t.Fatal(err)
					}
					sameBits(t, "TopK results", got, want)
					sameBits(t, "TopK stats", gqs, wqs)
				}
				batch := make([]int, 4)
				for i := range batch {
					batch[i] = rng.Intn(n)
				}
				gotB, gbs, err := co.TopKBatch(batch, k)
				if err != nil {
					t.Fatalf("round %d TopKBatch: %v", round, err)
				}
				wantB, wbs, err := oracle.TopKBatch(batch, k)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, "TopKBatch results", gotB, wantB)
				sameBits(t, "TopKBatch stats", gbs, wbs)

				seeds := map[int]float64{rng.Intn(n): 1, rng.Intn(n): 2.5}
				gotP, gps, err := co.TopKPersonalized(seeds, k)
				if err != nil {
					t.Fatalf("round %d TopKPersonalized: %v", round, err)
				}
				wantP, wps, err := oracle.TopKPersonalized(seeds, k)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, "TopKPersonalized results", gotP, wantP)
				sameBits(t, "TopKPersonalized stats", gps, wps)

				q, u := rng.Intn(n), rng.Intn(n)
				gotPx, err := co.Proximity(q, u)
				if err != nil {
					t.Fatalf("round %d Proximity: %v", round, err)
				}
				wantPx, err := oracle.Proximity(q, u)
				if err != nil {
					t.Fatal(err)
				}
				if gotPx != wantPx {
					t.Fatalf("round %d Proximity(%d,%d): %v != %v", round, q, u, gotPx, wantPx)
				}

				d := testutil.RandomDelta(rng, oracle.Graph(), 6)
				nextAny, _, err := co.ApplyDelta(d)
				if err != nil {
					t.Fatalf("round %d ApplyDelta: %v", round, err)
				}
				co = nextAny.(*placement.Coordinator)
				if oracle, _, err = oracle.Apply(d); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// edgeAdd is one edge-add op expressed once and applied through both
// surfaces: the coordinator's HTTP /update and the oracle's Apply.
type edgeAdd struct {
	From, To int
	W        float64
}

// randomEdgeAdds draws always-valid ops (adds/reweights never fail).
func randomEdgeAdds(rng *rand.Rand, n, count int) []edgeAdd {
	ops := make([]edgeAdd, count)
	for i := range ops {
		ops[i] = edgeAdd{From: rng.Intn(n), To: rng.Intn(n), W: 0.5 + rng.Float64()}
	}
	return ops
}

// postUpdate applies ops through POST /update, asserting the status.
func postUpdate(t *testing.T, h http.Handler, ops []edgeAdd, wantStatus int) *httptest.ResponseRecorder {
	t.Helper()
	type edgeJSON struct {
		From   int     `json:"from"`
		To     int     `json:"to"`
		Weight float64 `json:"weight"`
	}
	body := struct {
		AddEdges []edgeJSON `json:"addEdges"`
	}{}
	for _, op := range ops {
		body.AddEdges = append(body.AddEdges, edgeJSON{From: op.From, To: op.To, Weight: op.W})
	}
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/update", strings.NewReader(string(blob)))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("/update: status %d, want %d (%s)", rec.Code, wantStatus, rec.Body.String())
	}
	return rec
}

// applyOracle applies the same ops to the in-process oracle.
func applyOracle(t *testing.T, oracle *shard.ShardedIndex, ops []edgeAdd) *shard.ShardedIndex {
	t.Helper()
	d := oracle.Graph().NewDelta()
	for _, op := range ops {
		if err := d.AddEdge(op.From, op.To, op.W); err != nil {
			t.Fatal(err)
		}
	}
	next, _, err := oracle.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// topKHTTP fetches /topk and decodes nodes and scores.
func topKHTTP(t *testing.T, h http.Handler, q, k int) (*httptest.ResponseRecorder, []int, []float64) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/topk?q=%d&k=%d", q, k), nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return rec, nil, nil
	}
	var resp struct {
		Results []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	nodes := make([]int, len(resp.Results))
	scores := make([]float64, len(resp.Results))
	for i, r := range resp.Results {
		nodes[i], scores[i] = r.Node, r.Score
	}
	return rec, nodes, scores
}

// compareTopKHTTP asserts /topk answers are bit-identical to the
// oracle's (JSON round-trips float64 exactly, so == is the bit test).
func compareTopKHTTP(t *testing.T, h http.Handler, oracle *shard.ShardedIndex, q, k int, tag string) {
	t.Helper()
	rec, nodes, scores := topKHTTP(t, h, q, k)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s: /topk?q=%d: status %d (%s)", tag, q, rec.Code, rec.Body.String())
	}
	want, _, err := oracle.TopK(q, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(want) {
		t.Fatalf("%s: q=%d: %d results, oracle has %d", tag, q, len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i].Node || scores[i] != want[i].Score {
			t.Fatalf("%s: q=%d rank %d: (%d, %v) vs oracle (%d, %v)",
				tag, q, i, nodes[i], scores[i], want[i].Node, want[i].Score)
		}
	}
}

// TestDistributedWorkerKill runs the full HTTP stack over spawned
// workers, hard-kills one mid-chain, and checks the degradation
// contract end to end: affected queries answer 503 with a Retry-After
// hint (never a wrong body), a failed update leaves the epoch intact,
// and once the worker restarts — from stale disk, two epochs behind —
// the chain replay heals it and answers are bit-identical again.
func TestDistributedWorkerKill(t *testing.T) {
	seed := int64(43)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed)
	procs, addrs := spawnCluster(t, dir, 2)

	co, err := placement.NewCoordinator(dir, addrs, placement.Config{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h := server.New(co)
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := oracle.N()

	// Two updates through HTTP while everything is alive, so the
	// restarted worker comes back genuinely behind.
	for i := 0; i < 2; i++ {
		ops := randomEdgeAdds(rng, n, 3)
		postUpdate(t, h, ops, http.StatusOK)
		oracle = applyOracle(t, oracle, ops)
	}
	compareTopKHTTP(t, h, oracle, rng.Intn(n), 6, "pre-kill")

	// Kill worker 0's process: its shards are unreachable, and the
	// contract is a clean 503 — wrong answers are the one forbidden
	// outcome.
	procs[0].kill()
	saw503 := false
	for q := 0; q < n && !saw503; q++ {
		rec, _, _ := topKHTTP(t, h, q, 6)
		switch rec.Code {
		case http.StatusOK:
			// Served from live workers' shards; exactness is checked
			// after the restart below.
		case http.StatusServiceUnavailable:
			if rec.Header().Get("Retry-After") == "" {
				t.Fatalf("503 without a Retry-After hint: %s", rec.Body.String())
			}
			saw503 = true
		default:
			t.Fatalf("/topk?q=%d with a dead worker: status %d (%s)", q, rec.Code, rec.Body.String())
		}
	}
	if !saw503 {
		t.Fatal("no query ever touched the dead worker's shards")
	}

	// Updates cannot two-phase publish either: 503, epoch unchanged.
	epochBefore := co.Epoch()
	rec := postUpdate(t, h, randomEdgeAdds(rng, n, 2), http.StatusServiceUnavailable)
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("update 503 without a Retry-After hint")
	}
	if co.Epoch() != epochBefore {
		t.Fatalf("failed publish moved the epoch: %d -> %d", epochBefore, co.Epoch())
	}

	// Restart at the same address from the stale on-disk index: the
	// coordinator's chain replay must bring it current.
	spawnWorker(t, dir, addrs[0], "w0-restarted")
	for i := 0; i < 5; i++ {
		compareTopKHTTP(t, h, oracle, rng.Intn(n), 6, "post-restart")
	}
}

// TestDistributedTornConnections dials every worker through the seeded
// fault injector: calls see drops, delays and truncated frames, and the
// coordinator must hold the exact-or-unavailable line — a query either
// returns the oracle's bits or a typed rpc.ErrUnavailable, never a
// wrong answer.
func TestDistributedTornConnections(t *testing.T) {
	seed := int64(47)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed)
	_, addrs := spawnCluster(t, dir, 2)

	dial := rpc.FaultyDialer(rpc.NetDial, rpc.Faults{
		Seed:      seed,
		DropProb:  0.04,
		DelayProb: 0.10,
		TruncProb: 0.04,
	})
	co, err := placement.NewCoordinator(dir, addrs, placement.Config{Dial: dial, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}

	n, ok, unavailable := co.N(), 0, 0
	for i := 0; i < 150; i++ {
		q := rng.Intn(n)
		got, _, err := co.TopK(q, 5)
		if err != nil {
			if !errors.Is(err, rpc.ErrUnavailable) {
				t.Fatalf("TopK(%d): untyped failure %v", q, err)
			}
			unavailable++
			continue
		}
		want, _, werr := oracle.TopK(q, 5)
		if werr != nil {
			t.Fatal(werr)
		}
		sameBits(t, "torn-connection TopK", got, want)
		ok++
	}
	if ok == 0 {
		t.Fatal("fault injection starved every call; nothing was verified")
	}
	t.Logf("torn connections: %d exact answers, %d clean unavailable", ok, unavailable)
}

// TestDistributedWALMode smoke-tests the coordinator behind the durable
// update path: acks flow through the WAL, the compactor's ApplyDelta
// two-phase publishes to the worker processes, and the read barrier
// keeps post-ack queries bit-identical to the oracle.
func TestDistributedWALMode(t *testing.T) {
	seed := int64(53)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed)
	_, addrs := spawnCluster(t, dir, 2)

	co, err := placement.NewCoordinator(dir, addrs, placement.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := server.NewDurable(co, server.WALConfig{
		Dir:             t.TempDir(),
		Sync:            wal.SyncNone,
		CompactInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := oracle.N()

	ops := randomEdgeAdds(rng, n, 4)
	postUpdate(t, h, ops, http.StatusAccepted)
	oracle = applyOracle(t, oracle, ops)

	// The read barrier makes the next query wait for the compaction, so
	// these comparisons already cover ack -> drain -> publish.
	for i := 0; i < 3; i++ {
		compareTopKHTTP(t, h, oracle, rng.Intn(n), 6, "post-wal-update")
	}
}

// TestDistributedChaos is the long-running kill/restart smoke: workers
// are murdered and revived on a loop while queries and updates hammer
// the coordinator, and every single response must be exact or cleanly
// unavailable. Gated behind KDASH_CHAOS=1 (CI runs it on a schedule;
// locally it is seconds of pure process churn).
func TestDistributedChaos(t *testing.T) {
	if os.Getenv("KDASH_CHAOS") != "1" {
		t.Skip("chaos smoke disabled; set KDASH_CHAOS=1")
	}
	duration := 30 * time.Second
	if d, err := time.ParseDuration(os.Getenv("KDASH_CHAOS_DURATION")); err == nil && d > 0 {
		duration = d
	}
	seed := int64(59)
	rng := rand.New(rand.NewSource(seed))
	dir := buildDir(t, rng, seed)
	procs, addrs := spawnCluster(t, dir, 2)

	co, err := placement.NewCoordinator(dir, addrs, placement.Config{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := shard.Open(dir, shard.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n := oracle.N()

	// The chaos goroutine kills and revives a random worker on a loop.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		crng := rand.New(rand.NewSource(seed + 1))
		for {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(300+crng.Intn(500)) * time.Millisecond):
			}
			w := crng.Intn(len(procs))
			procs[w].kill()
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(100+crng.Intn(300)) * time.Millisecond):
			}
			procs[w] = spawnWorker(t, dir, addrs[w], fmt.Sprintf("chaos-w%d", w))
		}
	}()

	deadline := time.Now().Add(duration)
	exact, unavailable, updates := 0, 0, 0
	for time.Now().Before(deadline) {
		if rng.Intn(20) == 0 {
			// Updates race the chaos too: they either publish everywhere
			// or roll back whole.
			d := testutil.RandomDelta(rng, oracle.Graph(), 3)
			nextAny, _, err := co.ApplyDelta(d)
			if err != nil {
				if !errors.Is(err, rpc.ErrUnavailable) {
					t.Fatalf("chaos ApplyDelta: untyped failure %v", err)
				}
				continue
			}
			co = nextAny.(*placement.Coordinator)
			if oracle, _, err = oracle.Apply(d); err != nil {
				t.Fatal(err)
			}
			updates++
			continue
		}
		q := rng.Intn(n)
		got, _, err := co.TopK(q, 5)
		if err != nil {
			if !errors.Is(err, rpc.ErrUnavailable) {
				t.Fatalf("chaos TopK(%d): untyped failure %v", q, err)
			}
			unavailable++
			continue
		}
		want, _, werr := oracle.TopK(q, 5)
		if werr != nil {
			t.Fatal(werr)
		}
		sameBits(t, "chaos TopK", got, want)
		exact++
	}
	close(stop)
	<-done
	if exact == 0 {
		t.Fatal("chaos starved every query; nothing was verified")
	}
	t.Logf("chaos: %d exact answers, %d unavailable, %d updates applied over %v", exact, unavailable, updates, duration)
}
