// Package graph provides the directed weighted graph representation shared
// by every component of the K-dash reproduction: construction, degrees,
// breadth-first search (tree + layer numbers), the column-normalised
// adjacency matrix A from the paper's Equation (1), and TSV edge-list I/O.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"kdash/internal/sparse"
)

// Edge is a directed, weighted edge.
type Edge struct {
	From, To int
	Weight   float64
}

// Graph is an immutable directed weighted graph with nodes 0..n-1.
// Build one with a Builder or ParseEdgeList.
type Graph struct {
	n int
	// out[u] lists u's out-edges sorted by target; parallel weights in wOut.
	outPtr []int
	outTo  []int
	outW   []float64
	// in[u] lists u's in-edges sorted by source; built eagerly (cheap).
	inPtr  []int
	inFrom []int
	inW    []float64
}

// Builder accumulates edges for a Graph. Duplicate (from, to) pairs have
// their weights summed. Self loops are allowed.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n}
}

// AddEdge records the directed edge from -> to with the given weight.
// Weights must be positive: RWR transition probabilities are proportional
// to edge weights.
func (b *Builder) AddEdge(from, to int, weight float64) error {
	if from < 0 || from >= b.n || to < 0 || to >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) outside node range [0,%d)", from, to, b.n)
	}
	if weight <= 0 {
		return fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", from, to, weight)
	}
	b.edges = append(b.edges, Edge{from, to, weight})
	return nil
}

// AddUndirected records the edge in both directions with the same weight.
func (b *Builder) AddUndirected(u, v int, weight float64) error {
	if err := b.AddEdge(u, v, weight); err != nil {
		return err
	}
	if u != v {
		return b.AddEdge(v, u, weight)
	}
	return nil
}

// Build produces the immutable Graph, merging duplicate edges.
func (b *Builder) Build() *Graph {
	ed := make([]Edge, len(b.edges))
	copy(ed, b.edges)
	sort.Slice(ed, func(i, j int) bool {
		if ed[i].From != ed[j].From {
			return ed[i].From < ed[j].From
		}
		return ed[i].To < ed[j].To
	})
	g := &Graph{n: b.n, outPtr: make([]int, b.n+1)}
	for i := 0; i < len(ed); {
		j := i
		w := 0.0
		for j < len(ed) && ed[j].From == ed[i].From && ed[j].To == ed[i].To {
			w += ed[j].Weight
			j++
		}
		g.outTo = append(g.outTo, ed[i].To)
		g.outW = append(g.outW, w)
		g.outPtr[ed[i].From+1]++
		i = j
	}
	for u := 0; u < b.n; u++ {
		g.outPtr[u+1] += g.outPtr[u]
	}
	g.buildIn()
	return g
}

func (g *Graph) buildIn() {
	g.inPtr = make([]int, g.n+1)
	g.inFrom = make([]int, len(g.outTo))
	g.inW = make([]float64, len(g.outTo))
	for _, to := range g.outTo {
		g.inPtr[to+1]++
	}
	for u := 0; u < g.n; u++ {
		g.inPtr[u+1] += g.inPtr[u]
	}
	next := make([]int, g.n)
	copy(next, g.inPtr[:g.n])
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			to := g.outTo[i]
			g.inFrom[next[to]] = u
			g.inW[next[to]] = g.outW[i]
			next[to]++
		}
	}
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// M reports the number of (merged) directed edges.
func (g *Graph) M() int { return len(g.outTo) }

// OutDegree reports the number of out-edges of u.
func (g *Graph) OutDegree(u int) int { return g.outPtr[u+1] - g.outPtr[u] }

// InDegree reports the number of in-edges of u.
func (g *Graph) InDegree(u int) int { return g.inPtr[u+1] - g.inPtr[u] }

// Degree reports the number of edges incident to u (in + out), the measure
// used by the paper's degree reordering.
func (g *Graph) Degree(u int) int { return g.OutDegree(u) + g.InDegree(u) }

// OutNeighbors invokes fn for every out-edge (u -> to, w) of u.
func (g *Graph) OutNeighbors(u int, fn func(to int, w float64)) {
	for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
		fn(g.outTo[i], g.outW[i])
	}
}

// InNeighbors invokes fn for every in-edge (from -> u, w) of u.
func (g *Graph) InNeighbors(u int, fn func(from int, w float64)) {
	for i := g.inPtr[u]; i < g.inPtr[u+1]; i++ {
		fn(g.inFrom[i], g.inW[i])
	}
}

// HasEdge reports whether the (merged) directed edge from -> to exists.
// Out-of-range endpoints report false rather than panicking, so callers
// validating prospective delta ops need no separate range check. The
// scan is O(OutDegree(from)) — edge lists are unsorted within a column.
func (g *Graph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return false
	}
	for i := g.outPtr[from]; i < g.outPtr[from+1]; i++ {
		if g.outTo[i] == to {
			return true
		}
	}
	return false
}

// OutWeightSum reports the total weight of u's out-edges.
func (g *Graph) OutWeightSum(u int) float64 {
	s := 0.0
	for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
		s += g.outW[i]
	}
	return s
}

// Edges returns a copy of all directed edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			out = append(out, Edge{u, g.outTo[i], g.outW[i]})
		}
	}
	return out
}

// ColumnNormalized returns the paper's matrix A in CSC form:
// A[u][v] = w(v->u) / sum of v's out-weights, i.e. column v holds the
// transition probabilities out of node v. Nodes with no out-edges yield an
// all-zero column (the walk can only restart from them), which keeps
// W = I - (1-c)A nonsingular.
func (g *Graph) ColumnNormalized() *sparse.CSC {
	m := &sparse.CSC{Rows: g.n, Cols: g.n, ColPtr: make([]int, g.n+1)}
	m.RowIdx = make([]int, 0, g.M())
	m.Val = make([]float64, 0, g.M())
	for v := 0; v < g.n; v++ {
		total := g.OutWeightSum(v)
		if total > 0 {
			// Column v = out-edges of v; row indices must be sorted.
			type e struct {
				to int
				w  float64
			}
			es := make([]e, 0, g.OutDegree(v))
			for i := g.outPtr[v]; i < g.outPtr[v+1]; i++ {
				es = append(es, e{g.outTo[i], g.outW[i]})
			}
			sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
			for _, x := range es {
				m.RowIdx = append(m.RowIdx, x.to)
				m.Val = append(m.Val, x.w/total)
			}
		}
		m.ColPtr[v+1] = len(m.RowIdx)
	}
	return m
}

// BFSResult describes a breadth-first search tree: the visit order and the
// layer number of every node (-1 for unreachable nodes).
type BFSResult struct {
	Order []int // nodes in visit order; Order[0] is the root
	Layer []int // Layer[u] = hops from root, or -1 if unreachable
}

// BFS runs a breadth-first search from root following out-edges (the
// direction in which random-walk probability flows). Neighbours at equal
// depth are visited in ascending node order for determinism.
func (g *Graph) BFS(root int) *BFSResult {
	if root < 0 || root >= g.n {
		panic(fmt.Sprintf("graph: BFS root %d outside [0,%d)", root, g.n))
	}
	res := &BFSResult{Order: make([]int, 0, g.n), Layer: make([]int, g.n)}
	for i := range res.Layer {
		res.Layer[i] = -1
	}
	res.Layer[root] = 0
	res.Order = append(res.Order, root)
	for head := 0; head < len(res.Order); head++ {
		u := res.Order[head]
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			v := g.outTo[i]
			if res.Layer[v] < 0 {
				res.Layer[v] = res.Layer[u] + 1
				res.Order = append(res.Order, v)
			}
		}
	}
	return res
}

// Relabel returns a copy of the graph with node u renamed to perm[u].
func (g *Graph) Relabel(perm []int) *Graph {
	if len(perm) != g.n {
		panic("graph: Relabel permutation has wrong length")
	}
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			if err := b.AddEdge(perm[u], perm[g.outTo[i]], g.outW[i]); err != nil {
				panic(err) // perm out of range is a programming error
			}
		}
	}
	return b.Build()
}

// ParseEdgeList reads a whitespace-separated edge list: one edge per line,
// "from to [weight]". Lines starting with '#' or '%' and blank lines are
// skipped. Node IDs must be non-negative integers; n is inferred as
// 1 + max node id unless minNodes is larger.
func ParseEdgeList(r io.Reader, minNodes int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var edges []Edge
	maxID := minNodes - 1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'from to [weight]', got %q", line, text)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id %q: %v", line, fields[0], err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id %q: %v", line, fields[1], err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", line, fields[2], err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: line %d: non-positive weight %v", line, w)
			}
		}
		edges = append(edges, Edge{from, to, w})
		if from > maxID {
			maxID = from
		}
		if to > maxID {
			maxID = to
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	b := NewBuilder(maxID + 1)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.Weight); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WriteEdgeList serialises the graph as "from\tto\tweight" lines.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.n, g.M()); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			if _, err := fmt.Fprintf(bw, "%d\t%d\t%g\n", u, g.outTo[i], g.outW[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
