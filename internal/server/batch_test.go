package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdash/internal/gen"
	"kdash/internal/reorder"
	"kdash/internal/shard"
)

func post(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

type batchRespJSON struct {
	Count int `json:"count"`
	Items []struct {
		K          int `json:"k"`
		RequestedK int `json:"requestedK"`
		Results    []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"results"`
	} `json:"items"`
	Stats struct {
		Queries int   `json:"queries"`
		Visited int64 `json:"visited"`
	} `json:"stats"`
}

// sameRanked compares two rankings within tol, tolerating order swaps
// among exact-tie scores (the sharded engine may re-order ties when the
// batch schedule changes its accumulation order).
func sameRanked(t *testing.T, label string, got, want []struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d vs %d results", label, len(got), len(want))
		return
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > tol {
			t.Errorf("%s rank %d: score %v vs %v", label, i, got[i].Score, want[i].Score)
			return
		}
		if got[i].Node != want[i].Node && math.Abs(got[i].Score-want[i].Score) > 0 {
			t.Errorf("%s rank %d: node %d vs %d with differing scores", label, i, got[i].Node, want[i].Node)
			return
		}
	}
}

// TestBatchEndpointMatchesSingle is the HTTP half of the batch exactness
// property: for both engine shapes and the acceptance batch sizes,
// POST /topk/batch items agree with per-query GET /topk.
func TestBatchEndpointMatchesSingle(t *testing.T) {
	g := gen.PlantedPartition(120, 4, 0.2, 0.01, 1)
	engines := map[string]Engine{}
	{
		hm, _ := testHandler(t)
		engines["monolithic"] = hm.snap().engine
	}
	sx, err := shard.Build(g, shard.Options{Shards: 4, Reorder: reorder.Hybrid, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	engines["sharded"] = sx

	for name, engine := range engines {
		h := New(engine)
		for _, nb := range []int{1, 7, 64} {
			var sb strings.Builder
			sb.WriteString(`{"queries":[`)
			qs := make([]int, nb)
			for i := range qs {
				qs[i] = (i * 31) % engine.N()
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, `{"q":%d,"k":5}`, qs[i])
			}
			sb.WriteString(`]}`)
			rec := post(t, h, "/topk/batch", sb.String())
			if rec.Code != http.StatusOK {
				t.Fatalf("%s nb=%d: status %d: %s", name, nb, rec.Code, rec.Body.String())
			}
			var resp batchRespJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Count != nb || len(resp.Items) != nb || resp.Stats.Queries != nb {
				t.Fatalf("%s nb=%d: count %d items %d statsQueries %d", name, nb, resp.Count, len(resp.Items), resp.Stats.Queries)
			}
			for i, q := range qs {
				recS, _ := get(t, h, fmt.Sprintf("/topk?q=%d&k=5", q))
				var single struct {
					K       int `json:"k"`
					Results []struct {
						Node  int     `json:"node"`
						Score float64 `json:"score"`
					} `json:"results"`
				}
				if err := json.Unmarshal(recS.Body.Bytes(), &single); err != nil {
					t.Fatal(err)
				}
				if resp.Items[i].K != single.K || resp.Items[i].RequestedK != 5 {
					t.Errorf("%s nb=%d item %d: k=%d requestedK=%d, single k=%d", name, nb, i, resp.Items[i].K, resp.Items[i].RequestedK, single.K)
				}
				sameRanked(t, fmt.Sprintf("%s nb=%d item %d", name, nb, i), resp.Items[i].Results, single.Results, 1e-12)
			}
		}
	}
}

// TestBatchEndpointExclude checks per-query exclusions apply.
func TestBatchEndpointExclude(t *testing.T) {
	h, _ := testHandler(t)
	rec := post(t, h, "/topk/batch", `{"queries":[{"q":7,"k":5,"exclude":[7]},{"q":7,"k":5}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchRespJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Items[0].Results {
		if r.Node == 7 {
			t.Error("excluded node 7 in first item")
		}
	}
	found := false
	for _, r := range resp.Items[1].Results {
		if r.Node == 7 {
			found = true
		}
	}
	if !found {
		t.Error("query node missing from unexcluded item")
	}
}

// noBatchEngine hides the engine's native SearchBatch so the handler's
// sequential fallback path runs.
type noBatchEngine struct{ Engine }

func TestBatchEndpointSequentialFallback(t *testing.T) {
	hm, _ := testHandler(t)
	h := New(noBatchEngine{hm.snap().engine})
	if h.snap().batch != nil {
		t.Fatal("fallback engine unexpectedly batched")
	}
	rec := post(t, h, "/topk/batch", `{"queries":[{"q":7,"k":5},{"q":3,"k":2}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchRespJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || len(resp.Items[0].Results) != 5 || len(resp.Items[1].Results) != 2 {
		t.Errorf("fallback response %+v", resp)
	}
}

// TestBatchEndpointValidation walks the malformed-batch table asserting
// exact status codes.
func TestBatchEndpointValidation(t *testing.T) {
	hm, _ := testHandler(t)
	h := New(hm.snap().engine, WithMaxBatch(4))
	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},                                                                                  // empty batch
		{`{"queries":[]}`, http.StatusBadRequest},                                                                      // empty batch
		{`{"queries":[{"q":1,"k":0}]}`, http.StatusBadRequest},                                                         // k = 0
		{`{"queries":[{"q":1,"k":-3}]}`, http.StatusBadRequest},                                                        // negative k
		{`{"queries":[{"q":-1,"k":5}]}`, http.StatusBadRequest},                                                        // negative node
		{`{"queries":[{"q":99999,"k":5}]}`, http.StatusBadRequest},                                                     // out of range
		{`{"queries":[{"q":1,"k":5},{"q":2}]}`, http.StatusBadRequest},                                                 // second query missing k
		{`{"queries":[{"q":1,"k":5},{"q":2,"k":5},{"q":3,"k":5},{"q":4,"k":5},{"q":5,"k":5}]}`, http.StatusBadRequest}, // oversized
		{`{"queries":[{"q":1,"k":5,"exclude":["x"]}]}`, http.StatusBadRequest},                                         // non-numeric exclude
		{`{"queries":[{"q":1,"k":5}]}`, http.StatusOK},
	} {
		rec := post(t, h, "/topk/batch", tc.body)
		if rec.Code != tc.want {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, rec.Code, tc.want, rec.Body.String())
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/topk/batch", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /topk/batch: status %d", rec.Code)
	}
}

// TestBatchCountersInStatz checks /statz reports batch traffic.
func TestBatchCountersInStatz(t *testing.T) {
	h, _ := testHandler(t)
	post(t, h, "/topk/batch", `{"queries":[{"q":1,"k":3},{"q":2,"k":3},{"q":3,"k":3}]}`)
	post(t, h, "/topk/batch", `not json`)
	rec, _ := get(t, h, "/statz")
	var resp struct {
		Queries struct {
			Batch        int64 `json:"batch"`
			BatchQueries int64 `json:"batchQueries"`
			BadRequest   int64 `json:"badRequest"`
			Errors       int64 `json:"errors"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Queries.Batch != 2 || resp.Queries.BatchQueries != 3 {
		t.Errorf("batch counters = %+v", resp.Queries)
	}
	if resp.Queries.BadRequest != 1 || resp.Queries.Errors != 1 {
		t.Errorf("error counters = %+v", resp.Queries)
	}
}
