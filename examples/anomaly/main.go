// Anomaly: neighborhood-formation anomaly detection on a bipartite
// user-item graph, the scenario of Sun et al. (ICDM 2005) whose
// approximation method the paper uses as motivation. A user's RWR
// neighbourhood normally concentrates in their own community; a user
// whose proximity mass spreads across communities is anomalous (e.g. a
// fraudulent reviewer rating everything everywhere).
//
// We plant three cross-community "fraud" users in a community-structured
// bipartite graph and score every user by neighbourhood coherence: the
// fraction of its top-k proximity mass that falls inside its home
// community. The planted users should surface with the lowest coherence.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"kdash"
)

const (
	nUsers      = 150
	nItems      = 300
	communities = 5
	k           = 15
)

func main() {
	n := nUsers + nItems
	item := func(i int) int { return nUsers + i }
	userCom := func(u int) int { return u * communities / nUsers }
	itemCom := func(i int) int { return i * communities / nItems }

	rng := rand.New(rand.NewSource(11))
	b := kdash.NewBuilder(n)
	add := func(u, v int) {
		if err := b.AddEdge(u, v, 1); err != nil {
			log.Fatal(err)
		}
		if err := b.AddEdge(v, u, 1); err != nil {
			log.Fatal(err)
		}
	}
	planted := map[int]bool{10: true, 75: true, 140: true}
	for u := 0; u < nUsers; u++ {
		for e := 0; e < 8; e++ {
			var it int
			if planted[u] {
				it = rng.Intn(nItems) // fraud: rates uniformly everywhere
			} else {
				// Honest: rates within the home community, rare exceptions.
				c := userCom(u)
				if rng.Float64() < 0.05 {
					c = rng.Intn(communities)
				}
				base := c * nItems / communities
				it = base + rng.Intn(nItems/communities)
			}
			add(u, item(it))
		}
	}
	g := b.Build()

	ix, err := kdash.BuildIndex(g, kdash.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	type scored struct {
		user      int
		coherence float64
	}
	var scores []scored
	for u := 0; u < nUsers; u++ {
		rs, _, err := ix.TopK(u, k+1) // +1: skip the user itself
		if err != nil {
			log.Fatal(err)
		}
		inHome, total := 0.0, 0.0
		for _, r := range rs {
			if r.Node == u {
				continue
			}
			total += r.Score
			var com int
			if r.Node < nUsers {
				com = userCom(r.Node)
			} else {
				com = itemCom(r.Node - nUsers)
			}
			if com == userCom(u) {
				inHome += r.Score
			}
		}
		coherence := 1.0
		if total > 0 {
			coherence = inHome / total
		}
		scores = append(scores, scored{u, coherence})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].coherence < scores[j].coherence })

	fmt.Printf("bipartite graph: %d users x %d items, %d planted anomalies\n\n", nUsers, nItems, len(planted))
	fmt.Println("least coherent RWR neighbourhoods (suspected anomalies):")
	found := 0
	for i := 0; i < 6; i++ {
		s := scores[i]
		mark := ""
		if planted[s.user] {
			mark = "  <- planted anomaly"
			found++
		}
		fmt.Printf("  user %-4d coherence %.3f%s\n", s.user, s.coherence, mark)
	}
	fmt.Printf("\nrecovered %d/%d planted anomalies in the top 6 suspects\n", found, len(planted))
	if found < len(planted) {
		log.Fatal("anomaly example failed to surface the planted users")
	}
}
