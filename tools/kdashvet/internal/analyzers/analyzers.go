// Package analyzers hosts kdashvet's five invariant checkers. Each is
// annotation-driven: the invariant's scope is declared in the source
// with a //kdash: directive, and the analyzer mechanically verifies the
// body (and, for determinism, the same-package call graph) against it.
// See docs/STATIC_ANALYSIS.md for the contracts being enforced.
package analyzers

import (
	"go/ast"
	"go/types"

	"kdash/tools/kdashvet/internal/framework"
)

// All returns the full suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		PoolRelease,
		HotAlloc,
		ROFactors,
		Determinism,
		CtxCancel,
	}
}

// funcDecls indexes a package's function declarations by their type
// object, so static calls can be resolved to bodies and directives.
func funcDecls(pass *framework.Pass) map[*types.Func]*ast.FuncDecl {
	m := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				m[obj] = fd
			}
		}
	}
	return m
}

// calleeFunc resolves a call expression to its static callee, or nil
// for builtins, function-typed variables and interface-method calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// pkgPathOf returns the import path of a function's defining package
// ("" for builtins and universe-scope objects).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// receiverOrFirstArg returns the expression a method call's receiver or
// a function call's arguments, for checking which value a release-style
// call operates on.
func callOperands(call *ast.CallExpr) []ast.Expr {
	var ops []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ops = append(ops, sel.X)
	}
	ops = append(ops, call.Args...)
	return ops
}

// identObj resolves an expression to the *types.Var it names, unwrapping
// parens; nil when the expression is not a simple variable reference.
func identObj(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.ObjectOf(id).(*types.Var)
	return v
}
