package shard

// Batched query execution. A batch of queries runs one shared block
// push: every iteration picks the shard carrying the most eligible
// pending residual mass across the whole batch and solves it once for
// every query whose own frontier that shard is, through the blocked
// multi-RHS kernel (core.BatchSolver), so the factor traversal — the
// dominant per-solve cost — is paid once per block instead of once per
// query. Each query keeps its own residuals, tolerance and stats, so
// per-query answers carry exactly the full push's error guarantee; only
// the shard-solve schedule (and with it harmless floating-point
// accumulation order) differs from running the queries one at a time.

import (
	"context"
	"fmt"

	"kdash/internal/core"
	"kdash/internal/topk"
)

// BatchStats reports block-level work for one batched execution.
type BatchStats struct {
	BlockSolves int // multi-RHS factor sweeps performed
	BlockRHS    int // right-hand sides across all sweeps (Σ per-query Solves)
	PerQuery    []QueryStats
}

// Sharing reports how many per-query factor sweeps the batch saved:
// BlockRHS sequential solves collapsed into BlockSolves block solves.
func (bs BatchStats) Sharing() float64 {
	if bs.BlockSolves == 0 {
		return 1
	}
	return float64(bs.BlockRHS) / float64(bs.BlockSolves)
}

// pushBatch runs the shared block push for one scaled restart vector per
// query and returns per-query, per-shard accumulated proximity vectors.
//
// Scheduling: every iteration solves the shard carrying the most
// *eligible* pending mass, where a query's mass in a shard is eligible
// only when that shard is the query's own current argmax. This keeps
// each query's solve trajectory identical to the greedy schedule the
// single-query push runs (so a batch never performs more per-query
// solves than the sequential loop), while queries whose frontiers
// coincide — all queries start at their home shards, and residuals
// follow the same cut structure — still share one factor sweep.
// An earlier any-mass join rule measured ~2.3x per-query solve
// inflation: queries were dragged into solves of shards where they held
// negligible early mass, then re-solved them after their real inflow
// arrived.
// A cancelled context (checked once per block solve, never per node or
// per lane) abandons the whole batch with the context's error.
func (sx *ShardedIndex) pushBatch(ctx context.Context, seeds []map[int]float64) ([][][]float64, BatchStats, error) {
	nb := len(seeds)
	s := len(sx.parts)
	bs := BatchStats{PerQuery: make([]QueryStats, nb)}
	x := make([][][]float64, nb)
	res := make([][][]float64, nb)
	resMass := make([][]float64, nb)
	solved := make([][]bool, nb)
	tol := make([]float64, nb)
	done := make([]bool, nb)
	maxMass := make([]float64, nb)
	type seedLoc struct{ si, lv int }
	seedAt := make([][]seedLoc, nb)
	for b := range seeds {
		x[b] = make([][]float64, s)
		res[b] = make([][]float64, s)
		resMass[b] = make([]float64, s)
		solved[b] = make([]bool, s)
		initial := 0.0
		for g, m := range seeds[b] {
			si := sx.home[g]
			if res[b][si] == nil {
				res[b][si] = make([]float64, sx.partLen(si))
			}
			res[b][si][sx.local[g]] += m
			resMass[b][si] += m
			initial += m
			seedAt[b] = append(seedAt[b], seedLoc{si, sx.local[g]})
		}
		tol[b] = sx.qtol * initial
	}

	// A consumed residual vector is spot-cleaned over its possible
	// support — the shard's cut-target list plus the query's own seeds —
	// instead of fully rewiped.
	inTargets := sx.cutTargets()

	agg := make([]float64, s)
	solvers := make([]*core.BatchSolver, s)
	members := make([]int, 0, nb)
	rhs := make([][]float64, 0, nb)
	for {
		// Re-sum every active query's residual (assigned, not drifted —
		// see pushWeighted), retiring queries that have converged, and
		// aggregate each remaining query's argmax-shard mass.
		for si := range agg {
			agg[si] = 0
		}
		active := false
		for b := 0; b < nb; b++ {
			if done[b] {
				continue
			}
			total, m := 0.0, 0.0
			for si := 0; si < s; si++ {
				total += resMass[b][si]
				if resMass[b][si] > m {
					m = resMass[b][si]
				}
			}
			bs.PerQuery[b].ResidualMass = total
			if total <= tol[b] {
				done[b] = true
				bs.PerQuery[b].Converged = true
				continue
			}
			active = true
			maxMass[b] = m
			for si := 0; si < s; si++ {
				if resMass[b][si] >= m {
					agg[si] += resMass[b][si]
				}
			}
		}
		if !active || bs.BlockSolves >= maxSolves {
			break
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, bs, fmt.Errorf("shard: batch cancelled after %d block solves: %w", bs.BlockSolves, err)
			}
		}
		best, bestMass := -1, 0.0
		for si := 0; si < s; si++ {
			if agg[si] > bestMass {
				best, bestMass = si, agg[si]
			}
		}
		if best < 0 {
			break
		}
		// One block solve for every query whose argmax shard this is.
		p := sx.parts[best]
		members = members[:0]
		rhs = rhs[:0]
		for b := 0; b < nb; b++ {
			if !done[b] && resMass[b][best] > 0 && resMass[b][best] >= maxMass[b] {
				members = append(members, b)
				rhs = append(rhs, res[b][best])
			}
		}
		var ys [][]float64
		var sups [][]int
		if r := sx.remote; r != nil {
			// Distributed serving: the block solve runs on the worker
			// owning the shard. The right-hand sides are serialized before
			// the call returns, so spot-cleaning them below is safe.
			var err error
			ys, sups, err = r.SolveBatch(best, rhs)
			if err != nil {
				return nil, bs, err
			}
		} else {
			if solvers[best] == nil {
				solvers[best] = p.index().NewBatchSolver() // first solve maps a lazy shard
			}
			var err error
			ys, sups, err = solvers[best].SolveOn(rhs)
			if err != nil {
				panic(fmt.Sprintf("shard: internal batch solve shape mismatch: %v", err)) // sized by partLen; unreachable
			}
		}
		bs.BlockSolves++
		bs.BlockRHS += len(members)
		// Per-member bookkeeping: the consumed residual is spot-cleaned
		// over its possible support (cut targets plus the query's seeds).
		// NodesEvaluated counts the owned rows the block kernel actually
		// evaluated for this lane: the chunk's *shared* support (every
		// lane of a chunk is computed on the union of its members'
		// supports), or the whole shard for a dense solve. It can
		// therefore read higher than the same query's single-TopK count,
		// whose solve evaluates only that query's own support.
		lastChunk, lastEval := -1, 0
		for j, b := range members {
			if jc := j - j%core.BlockWidth; jc != lastChunk {
				lastChunk = jc
				if sup := sups[jc]; sup != nil {
					lastEval = 0
					for _, lv := range sup {
						if lv < len(p.nodes) {
							lastEval++
						}
					}
				} else {
					lastEval = len(p.nodes)
				}
			}
			qs := &bs.PerQuery[b]
			qs.Solves++
			qs.NodesEvaluated += lastEval
			if x[b][best] == nil {
				x[b][best] = make([]float64, len(p.nodes))
				qs.ShardsSolved++
			}
			solved[b][best] = true
			rb := res[b][best]
			for _, t := range inTargets[best] {
				rb[t] = 0
			}
			for _, sl := range seedAt[b] {
				if sl.si == best {
					rb[sl.lv] = 0
				}
			}
			resMass[b][best] = 0
		}
		// Accumulate the solved mass and scatter it across the cut edges,
		// visiting only the solution support when the solver reports one
		// (rows outside it are zero — or stale in the returned vectors,
		// which the SolveOn contract forbids reading). Members are walked
		// in solver-chunk groups so each node's cut-edge range is loaded
		// once per group rather than once per member.
		for g0 := 0; g0 < len(members); g0 += core.BlockWidth {
			g1 := g0 + core.BlockWidth
			if g1 > len(members) {
				g1 = len(members)
			}
			consume := func(lv int) {
				cuts := p.cuts[p.cutPtr[lv]:p.cutPtr[lv+1]]
				for j := g0; j < g1; j++ {
					b := members[j]
					yv := ys[j][lv]
					x[b][best][lv] += yv
					if yv == 0 {
						continue
					}
					for _, e := range cuts {
						if res[b][e.dstShard] == nil {
							res[b][e.dstShard] = make([]float64, sx.partLen(e.dstShard))
						}
						add := e.w * yv
						res[b][e.dstShard][e.dst] += add
						resMass[b][e.dstShard] += add
					}
				}
			}
			if sup := sups[g0]; sup != nil {
				for _, lv := range sup {
					if lv < len(p.nodes) { // skip the ghost sink's absorbed mass
						consume(lv)
					}
				}
			} else {
				for lv := range p.nodes {
					consume(lv)
				}
			}
		}
	}
	for b := 0; b < nb; b++ {
		for si := 0; si < s; si++ {
			if resMass[b][si] > 0 && !solved[b][si] {
				bs.PerQuery[b].ShardsPruned++
			}
		}
	}
	return x, bs, nil
}

// TopKBatch answers top-k for a block of query nodes through the shared
// block push; see the package comment at the top of this file. Answers
// match per-query TopK within the index's tolerance guarantee.
func (sx *ShardedIndex) TopKBatch(qs []int, k int) ([][]topk.Result, BatchStats, error) {
	queries := make([]core.BatchQuery, len(qs))
	for i, q := range qs {
		queries[i] = core.BatchQuery{Q: q, K: k}
	}
	return sx.searchBatch(nil, queries)
}

func (sx *ShardedIndex) searchBatch(ctx context.Context, queries []core.BatchQuery) ([][]topk.Result, BatchStats, error) {
	for i, bq := range queries {
		if bq.Q < 0 || bq.Q >= sx.n {
			return nil, BatchStats{}, fmt.Errorf("shard: batch query %d: node %d outside [0,%d)", i, bq.Q, sx.n)
		}
		if bq.K <= 0 {
			return nil, BatchStats{}, fmt.Errorf("shard: batch query %d: K must be positive, got %d", i, bq.K)
		}
	}
	seeds := make([]map[int]float64, len(queries))
	for i, bq := range queries {
		seeds[i] = map[int]float64{bq.Q: sx.c}
	}
	xs, bs, err := sx.pushBatch(ctx, seeds)
	if err != nil {
		return nil, bs, err
	}
	results := make([][]topk.Result, len(queries))
	for i, bq := range queries {
		results[i] = sx.rank(xs[i], bq.K, bq.Exclude)
	}
	return results, bs, nil
}

// SearchBatch serves a block of queries through the server's batched
// engine surface, mirroring core.Index.SearchBatch: all queries are
// validated before any work happens.
func (sx *ShardedIndex) SearchBatch(queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error) {
	return sx.SearchBatchCtx(nil, queries)
}

// SearchBatchCtx is SearchBatch with cancellation: a cancelled context
// abandons the shared block push between block solves and returns the
// context's error wrapped with the work done so far.
func (sx *ShardedIndex) SearchBatchCtx(ctx context.Context, queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error) {
	results, bs, err := sx.searchBatch(ctx, queries)
	if err != nil {
		return nil, nil, err
	}
	stats := make([]core.SearchStats, len(bs.PerQuery))
	for i, qs := range bs.PerQuery {
		stats[i] = qs.searchStats()
	}
	return results, stats, nil
}
