package shard

// Incremental updates. The partitioned design doubles as an update
// isolation mechanism: an edge change only alters the *source* node's
// column of the paper's matrix W = I - (1-c)A (its out-normalisation
// and targets), and under the ghost-sink construction that column lives
// entirely inside the source's home shard block plus that shard's
// outgoing cut list. Apply therefore refactorizes only the owning
// shards of a batch's edge sources — one LU block per dirty shard,
// built through the same worker pool and buildPart as a from-scratch
// Build — patches those shards' cut lists, and shares every untouched
// part (its core.Index, node list and cuts) with the previous epoch by
// pointer.
//
// Apply is functional: the receiver is never modified and the returned
// successor is a fresh immutable ShardedIndex, so pooled in-flight
// queries on the old epoch never observe a half-applied update. A
// shard rebuilt by Apply goes through exactly the code path Build uses
// with the same per-shard seed, so the successor is bit-identical to
// Build(updatedGraph, Options{Assignment: successor.Assignment(), ...})
// — the property the differential harness pins down.
//
// Node insertion appends to the least-loaded shard and bumps that
// shard's staleness counter; past the staleness limit the shard is
// re-partitioned locally (each of its nodes re-homed to the shard it is
// most strongly connected to), which rebuilds the affected blocks and
// re-collects every cut list.

import (
	"fmt"
	"time"

	"kdash/internal/core"
	"kdash/internal/graph"
)

// UpdateStats reports the work one Apply performed.
type UpdateStats struct {
	EdgesAdded   int
	EdgesRemoved int
	NodesAdded   int
	CutCrossing  int // edge ops whose endpoints live in different shards

	ShardsRebuilt int   // LU blocks refactorized
	DirtyShards   []int // ids of the refactorized shards, ascending
	CutsPatched   int   // shards whose outgoing cut lists were recomputed
	Repartitioned bool  // a staleness limit triggered local re-partitioning
	NodesMoved    int   // nodes re-homed by the re-partitioning

	Epoch     int           // the successor's epoch number
	GraphTime time.Duration // applying the delta to the graph snapshot
	BuildTime time.Duration // wall clock of the shard rebuilds (worker pool)
}

// Graph returns the current graph snapshot, parsing a lazily loaded
// one on first use. It returns nil for an index loaded from a manifest
// that predates graph snapshots (such an index answers queries but
// rejects Apply) — and for a deferred snapshot whose parse failed,
// which Apply reports as an error.
func (sx *ShardedIndex) Graph() *graph.Graph {
	sx.ensureGraph()
	return sx.g
}

// ensureGraph forces a deferred graph-snapshot parse, once.
func (sx *ShardedIndex) ensureGraph() error {
	// gLoad is written once at load time and never mutated afterwards,
	// so this read is race-free alongside concurrent ensureGraph calls.
	if sx.gLoad != nil {
		sx.gOnce.Do(func() { sx.g, sx.gErr = sx.gLoad() })
	}
	return sx.gErr
}

// Epoch reports how many Apply steps produced this index: 0 for a
// fresh build, incrementing along the successor chain.
func (sx *ShardedIndex) Epoch() int { return sx.epoch }

// SetWALInfo stamps the write-ahead-log position the index's state
// covers: seq is the last WAL sequence number whose delta is folded
// into the factors, segments the live segment files at stamp time. Save
// persists both into the manifest (v4), so recovery replays only
// records past seq. Call it on a successor just before Save; Apply
// deliberately does not carry the stamp forward, because a successor
// with further deltas applied no longer matches the stamped position.
func (sx *ShardedIndex) SetWALInfo(seq uint64, segments []string) {
	sx.walSeq = seq
	sx.walSegments = append([]string(nil), segments...)
}

// WALSeq reports the last WAL sequence number this index's snapshot
// covers — 0 when the index never ran under a WAL (replay everything).
func (sx *ShardedIndex) WALSeq() uint64 { return sx.walSeq }

// WALSegments reports the WAL segment files live when the snapshot was
// stamped (informational; recovery rescans the log directory).
func (sx *ShardedIndex) WALSegments() []string {
	return append([]string(nil), sx.walSegments...)
}

// Assignment returns a copy of the node -> shard map. Feeding it to
// Build via Options.Assignment on the updated graph reproduces this
// index bit-for-bit — the oracle the differential tests rebuild.
func (sx *ShardedIndex) Assignment() []int {
	return append([]int(nil), sx.home...)
}

// Apply returns a successor index with the batch absorbed, leaving the
// receiver untouched (queries against it remain valid and exact for
// the old graph). Only the shards owning a changed column are
// refactorized; everything else is shared with the receiver.
func (sx *ShardedIndex) Apply(batch *graph.Delta) (*ShardedIndex, UpdateStats, error) {
	var us UpdateStats
	if err := sx.ensureGraph(); err != nil {
		return nil, us, fmt.Errorf("shard: loading graph snapshot: %w", err)
	}
	if sx.g == nil {
		return nil, us, fmt.Errorf("shard: %w (loaded from a pre-v2 manifest); rebuild from the original edge list instead", core.ErrNotUpdatable)
	}
	// The graph delta applies by full rebuild (O(m) map + sort): at the
	// bench scale that is a few percent of one block's refactorization,
	// and going through graph.Builder is what guarantees the snapshot is
	// indistinguishable from a freshly built graph — the foundation of
	// the bit-identity contract.
	t0 := time.Now()
	newG, err := sx.g.Apply(batch)
	if err != nil {
		return nil, us, err
	}
	us.GraphTime = time.Since(t0)
	us.EdgesAdded, us.EdgesRemoved, us.NodesAdded = batch.Counts()

	s := len(sx.parts)
	n2 := newG.N()

	// Extend the assignment: every inserted node goes to the currently
	// least-loaded shard (ties to the lowest shard id) and bumps that
	// shard's staleness.
	home2 := make([]int, n2)
	copy(home2, sx.home)
	staleness2 := append([]int(nil), sx.staleness...)
	sizes := make([]int, s)
	for si, p := range sx.parts {
		sizes[si] = len(p.nodes)
	}
	for u := sx.n; u < n2; u++ {
		best := 0
		for si := 1; si < s; si++ {
			if sizes[si] < sizes[best] {
				best = si
			}
		}
		home2[u] = best
		sizes[best]++
		staleness2[best]++
	}

	// Dirty shards: the home of every edge op's source column, plus
	// every shard that received an inserted node (its node list and
	// local-id space grew).
	rebuild := make([]bool, s)
	for _, e := range batch.Edges() {
		rebuild[home2[e.From]] = true
		if home2[e.From] != home2[e.To] {
			us.CutCrossing++
		}
	}
	for u := sx.n; u < n2; u++ {
		rebuild[home2[u]] = true
	}

	// Staleness check: re-home the nodes of any shard past its limit.
	if sx.stalenessLimit >= 0 {
		for si := 0; si < s; si++ {
			if staleness2[si] <= sx.stalenessLimit {
				continue
			}
			moved := repartitionLocal(newG, home2, si, s)
			us.NodesMoved += len(moved)
			us.Repartitioned = true
			staleness2[si] = 0
			rebuild[si] = true
			for _, dst := range moved {
				rebuild[dst] = true
			}
		}
	}

	// Assemble the successor. Parts outside the rebuild set are shared
	// by pointer — their node lists, indexes and cut lists are all
	// unchanged (an edge change only rewrites its source shard's block
	// and cuts; incoming cut edges live in the *source* shard's list) —
	// unless a re-partition moved nodes, which shifts local ids and
	// forces every cut list to be re-targeted.
	sx2 := &ShardedIndex{
		n:              n2,
		c:              sx.c,
		qtol:           sx.qtol,
		home:           home2,
		local:          make([]int, n2),
		parts:          make([]*part, s),
		g:              newG,
		method:         sx.method,
		seed:           sx.seed,
		workers:        sx.workers,
		stalenessLimit: sx.stalenessLimit,
		staleness:      staleness2,
		epoch:          sx.epoch + 1,
		precision:      sx.precision,
		pushWorkers:    sx.pushWorkers,
		mapCapable:     sx.mapCapable, // shared unrebuilt parts keep their mappings
		factorless:     sx.factorless, // remote is deliberately not carried: the coordinator rebinds per epoch
	}
	cutMask := make([]bool, s)
	for si := 0; si < s; si++ {
		if rebuild[si] {
			sx2.parts[si] = &part{}
			cutMask[si] = true
			continue
		}
		if us.Repartitioned {
			// Index unchanged, but cut targets' local ids may have
			// shifted: fresh part sharing the (possibly still deferred)
			// index, cuts redone below via the mask.
			sx2.parts[si] = sx.parts[si].share()
			cutMask[si] = true
			continue
		}
		sx2.parts[si] = sx.parts[si]
	}
	// Local ids: shared shards keep theirs (node sets unchanged, same
	// ascending-global-id rule); rebuilt shards refill by that rule.
	for u := 0; u < n2; u++ {
		si := home2[u]
		if rebuild[si] {
			p := sx2.parts[si]
			sx2.local[u] = len(p.nodes)
			p.nodes = append(p.nodes, u)
		} else {
			sx2.local[u] = sx.local[u]
		}
	}
	for si := 0; si < s; si++ {
		if len(sx2.parts[si].nodes) == 0 {
			// Unreachable by construction (repartitionLocal never empties
			// a shard and insertion only appends), but a corrupt state
			// must fail loudly rather than build a broken index.
			return nil, us, fmt.Errorf("shard: update would leave shard %d empty", si)
		}
	}

	// Refactorize the dirty blocks through the same worker-pool path a
	// from-scratch Build runs (buildParts), which is what keeps the
	// successor bit-identical to a pinned-assignment rebuild.
	dirty := make([]int, 0, s)
	for si := 0; si < s; si++ {
		if rebuild[si] {
			dirty = append(dirty, si)
		}
	}
	tBuild := time.Now()
	cpu, err := sx2.buildParts(newG, dirty, sx.workers)
	if err != nil {
		return nil, us, err
	}
	us.BuildTime = time.Since(tBuild)
	us.ShardsRebuilt = len(dirty)
	us.DirtyShards = dirty

	// Patch the cut lists of every shard whose outgoing cuts changed and
	// refresh the global cut statistics.
	cutEdges, cutW, totalW := sx2.fillCuts(newG, cutMask)
	for _, m := range cutMask {
		if m {
			us.CutsPatched++
		}
	}

	nnz, nnzKnown := 0, true
	newSizes := make([]int, s)
	for si, p := range sx2.parts {
		newSizes[si] = len(p.nodes)
		// nnzInverse never forces a deferred shard open: unopened shared
		// parts fall back to their manifest hint, so an update against a
		// lazily mapped index stays proportional to its dirty set.
		v, ok := p.nnzInverse()
		nnz += v
		nnzKnown = nnzKnown && ok
	}
	if !nnzKnown {
		// A lazily loaded pre-v3 directory carries no per-shard hints, so
		// the aggregate over unopened shards is unknowable without opens.
		// Carrying the previous epoch's (slightly stale) total forward
		// beats persisting an undercount; Save recomputes the true value
		// when it force-opens every shard.
		nnz = sx.stats.NNZInverse
	}
	frac := 0.0
	if totalW > 0 {
		frac = cutW / totalW
	}
	// Successor stats: the structural fields (Sizes, cut statistics,
	// NNZInverse) and the build timings describe THIS epoch's state and
	// incremental rebuild; Communities/Modularity carry over — they
	// describe the original partitioning, which updates refine but never
	// recompute globally.
	sx2.stats = sx.stats
	sx2.stats.Sizes = newSizes
	sx2.stats.CutEdges = cutEdges
	sx2.stats.CutWeightFrac = frac
	sx2.stats.NNZInverse = nnz
	sx2.stats.BuildTime = us.BuildTime
	sx2.stats.ShardCPUTime = cpu
	sx2.stats.PartitionTime = 0
	us.Epoch = sx2.epoch
	return sx2, us, nil
}

// repartitionLocal re-homes the nodes of stale shard si to the shard
// each is most strongly connected to (summed edge weight in both
// directions; ties keep the node where it is), mutating home in place
// and returning the deduplicated destination shards. The shard is
// never emptied: the node with the largest in-shard attachment stays.
func repartitionLocal(g *graph.Graph, home []int, si, s int) []int {
	type move struct {
		node, dst int
	}
	var moves []move
	stay := 0
	attach := make([]float64, s)
	bestKeep, bestKeepAttach := -1, -1.0
	for u := 0; u < len(home); u++ {
		if home[u] != si {
			continue
		}
		for i := range attach {
			attach[i] = 0
		}
		g.OutNeighbors(u, func(v int, w float64) {
			if v != u {
				attach[home[v]] += w
			}
		})
		g.InNeighbors(u, func(v int, w float64) {
			if v != u {
				attach[home[v]] += w
			}
		})
		best := si
		for cand := 0; cand < s; cand++ {
			if attach[cand] > attach[best] {
				best = cand
			}
		}
		if best == si {
			stay++
		} else {
			moves = append(moves, move{node: u, dst: best})
		}
		if attach[si] > bestKeepAttach {
			bestKeep, bestKeepAttach = u, attach[si]
		}
	}
	if stay == 0 && len(moves) > 0 {
		// Keep the most attached node so the shard never empties.
		kept := moves[:0]
		for _, m := range moves {
			if m.node != bestKeep {
				kept = append(kept, m)
			}
		}
		moves = kept
	}
	seen := make([]bool, s)
	var dsts []int
	for _, m := range moves {
		home[m.node] = m.dst
		if !seen[m.dst] {
			seen[m.dst] = true
			dsts = append(dsts, m.dst)
		}
	}
	return dsts
}

// ApplyDelta implements the dynamic-engine seam the HTTP server swaps
// epochs through, mirroring core.Index.ApplyDelta: the successor index
// is returned untyped and the shard-level stats fold into the neutral
// core.UpdateStats shape.
func (sx *ShardedIndex) ApplyDelta(batch *graph.Delta) (any, core.UpdateStats, error) {
	sx2, us, err := sx.Apply(batch)
	if err != nil {
		return nil, core.UpdateStats{}, err
	}
	return sx2, core.UpdateStats{
		EdgesAdded:    us.EdgesAdded,
		EdgesRemoved:  us.EdgesRemoved,
		NodesAdded:    us.NodesAdded,
		Epoch:         us.Epoch,
		ShardsRebuilt: us.ShardsRebuilt,
		DirtyShards:   us.DirtyShards,
		Repartitioned: us.Repartitioned,
		FullRebuild:   us.ShardsRebuilt == len(sx.parts),
		BuildTime:     us.BuildTime,
	}, nil
}
