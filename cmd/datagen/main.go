// Command datagen writes the five simulated evaluation datasets as TSV
// edge lists (plus the Dictionary label file) so they can be inspected or
// fed back through cmd/kdash.
//
// Usage:
//
//	datagen -out ./data
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kdash/internal/dataset"
)

func main() {
	out := flag.String("out", "data", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, ds := range dataset.All() {
		path := filepath.Join(*out, ds.Name+".tsv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := ds.Graph.WriteEdgeList(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d nodes, %d edges -> %s\n", ds.Name, ds.Graph.N(), ds.Graph.M(), path)
		if ds.Labels != nil {
			lp := filepath.Join(*out, ds.Name+".labels.tsv")
			lf, err := os.Create(lp)
			if err != nil {
				fatal(err)
			}
			w := bufio.NewWriter(lf)
			for i, l := range ds.Labels {
				fmt.Fprintf(w, "%d\t%s\n", i, l)
			}
			if err := w.Flush(); err != nil {
				lf.Close()
				fatal(err)
			}
			if err := lf.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("%s labels -> %s\n", ds.Name, lp)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
