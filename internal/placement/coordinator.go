package placement

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/obs"
	"kdash/internal/rpc"
	"kdash/internal/shard"
	"kdash/internal/topk"
)

// Config tunes a Coordinator.
type Config struct {
	// Dial opens worker connections; nil uses plain TCP. The
	// differential harness injects rpc.FaultyDialer here.
	Dial rpc.DialFunc
	// Timeout bounds each worker call (0 = the rpc package default).
	Timeout time.Duration
	// PushWorkers enables the speculative parallel push on the
	// coordinator's greedy loop, exactly as LoadOptions.PushWorkers
	// does in-process (<2 = sequential). Speculative solves become
	// concurrent in-flight RPCs.
	PushWorkers int
}

// chainEntry is one published update: the epoch it produced and the
// delta's wire encoding, kept for replaying to workers that missed it.
type chainEntry struct {
	epoch int
	delta []byte
}

// cluster is the share-everything half of a coordinator: worker
// clients, the shard→worker placement, per-worker observability and
// the update chain. Successor coordinators from ApplyDelta share one
// cluster, so replay state and stats survive epoch swaps.
type cluster struct {
	clients   []*rpc.Client
	placement []int // shard -> worker index

	lat        []*obs.Histogram // per-worker solve-call latency
	errs       []atomic.Int64   // per-worker failed calls
	reconnects []atomic.Int64   // per-worker recover (replay) rounds

	// mu serialises publishes and recoveries: an update fan-out and a
	// worker replay must not interleave, or the worker could observe
	// epochs out of order.
	mu        sync.Mutex
	baseEpoch int
	chain     []chainEntry
}

// call routes one solve RPC to shard si's worker, healing a lagging or
// restarted worker by replaying the update chain and retrying once.
// Every failure mode ends in a typed error: the caller sees the exact
// answer or ErrUnavailable, never a silently wrong result.
func (cl *cluster) call(si int, op uint8, body []byte) ([]byte, error) {
	w := cl.placement[si]
	t0 := time.Now()
	resp, err := cl.clients[w].Call(op, body)
	cl.lat[w].Observe(time.Since(t0))
	if err == nil {
		return resp, nil
	}
	// One recovery round: re-handshake and replay whatever chain suffix
	// the worker is missing (covers restart-from-disk, which resets the
	// worker to the base epoch), then retry the call once.
	if rerr := cl.recover(w); rerr != nil {
		cl.errs[w].Add(1)
		return nil, fmt.Errorf("worker %d unrecoverable: %w (after %v)", w, err, rerr)
	}
	resp, err = cl.clients[w].Call(op, body)
	if err == nil {
		return resp, nil
	}
	cl.errs[w].Add(1)
	if errors.Is(err, rpc.ErrWrongEpoch) {
		// Replay brought the worker current, yet the requested epoch is
		// still not resident: it was evicted (this query outlived two
		// publishes). Degrade, do not guess.
		return nil, fmt.Errorf("%w: epoch evicted from worker %d", rpc.ErrUnavailable, w)
	}
	return nil, err
}

// recover re-handshakes worker w and replays every chain entry past the
// epoch the worker reports. Serialised with publishes via cl.mu.
func (cl *cluster) recover(w int) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.reconnects[w].Add(1)
	return cl.replayLocked(w)
}

func (cl *cluster) replayLocked(w int) error {
	h, err := cl.clients[w].Hello()
	if err != nil {
		return err
	}
	for _, ce := range cl.chain {
		if ce.epoch <= h.Epoch {
			continue
		}
		if _, err := cl.clients[w].Call(rpc.OpPrepare, rpc.AppendPrepareRequest(nil, ce.epoch, ce.delta)); err != nil {
			return err
		}
		if _, err := cl.clients[w].Call(rpc.OpCommit, rpc.AppendEpochRequest(nil, ce.epoch)); err != nil {
			return err
		}
	}
	return nil
}

// epochSolver binds solve RPCs to one epoch — the shard.RemoteSolver a
// coordinator installs on each epoch's index, so every query resolves
// against exactly the factors its epoch published and a publish
// mid-query can never mix bits from two epochs.
type epochSolver struct {
	cl       *cluster
	epoch    int
	partLens []int
}

// SolveSparse implements shard.RemoteSolver.
func (es *epochSolver) SolveSparse(si int, idx []int, val []float64) ([]float64, []int, error) {
	resp, err := es.cl.call(si, rpc.OpSolve, rpc.AppendSolveRequest(nil, es.epoch, si, idx, val))
	if err != nil {
		return nil, nil, err
	}
	y := make([]float64, es.partLens[si])
	sup, err := rpc.DecodeSolveResponse(resp, y)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: shard %d: %v", rpc.ErrUnavailable, si, err)
	}
	return y, sup, nil
}

// SolveBatch implements shard.RemoteSolver.
func (es *epochSolver) SolveBatch(si int, rhs [][]float64) ([][]float64, [][]int, error) {
	resp, err := es.cl.call(si, rpc.OpBatchSolve, rpc.AppendBatchSolveRequest(nil, es.epoch, si, rhs))
	if err != nil {
		return nil, nil, err
	}
	ys, sups, err := rpc.DecodeBatchSolveResponse(resp, core.BlockWidth, es.partLens[si])
	if err != nil {
		return nil, nil, fmt.Errorf("%w: shard %d: %v", rpc.ErrUnavailable, si, err)
	}
	return ys, sups, nil
}

// Coordinator serves the full engine surface from a factorless index,
// fanning factor solves out to workers. Like the index itself it is
// functional: ApplyDelta returns a successor Coordinator for the new
// epoch, sharing the cluster, while the receiver keeps serving the old
// epoch bit-exactly.
type Coordinator struct {
	sx *shard.ShardedIndex
	cl *cluster
}

// NewCoordinator opens the index directory factorless (manifest,
// assignment, cuts and graph snapshot only — no shard file is ever
// mapped), connects to the workers and validates that each serves the
// same index shape at the same epoch, and binds the base epoch's
// remote solver. The placement is round-robin: shard si lives on
// worker si mod len(addrs), matching what every worker derives from
// the shared manifest.
func NewCoordinator(dir string, addrs []string, cfg Config) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("placement: no worker addresses")
	}
	sx, err := shard.Open(dir, shard.LoadOptions{Lazy: true, PushWorkers: cfg.PushWorkers})
	if err != nil {
		return nil, err
	}
	sx.SetFactorless()
	cl := &cluster{
		clients:    make([]*rpc.Client, len(addrs)),
		placement:  Assign(sx.Shards(), len(addrs)),
		lat:        make([]*obs.Histogram, len(addrs)),
		errs:       make([]atomic.Int64, len(addrs)),
		reconnects: make([]atomic.Int64, len(addrs)),
		baseEpoch:  sx.Epoch(),
	}
	for w, addr := range addrs {
		cl.clients[w] = rpc.NewClient(addr, cfg.Dial, cfg.Timeout)
		cl.lat[w] = &obs.Histogram{}
		h, err := cl.clients[w].Hello()
		if err != nil {
			return nil, fmt.Errorf("placement: worker %d (%s): %w", w, addr, err)
		}
		if h.N != sx.N() || h.Shards != sx.Shards() || h.Epoch != sx.Epoch() {
			return nil, fmt.Errorf("placement: worker %d (%s) serves n=%d shards=%d epoch=%d, coordinator has n=%d shards=%d epoch=%d",
				w, addr, h.N, h.Shards, h.Epoch, sx.N(), sx.Shards(), sx.Epoch())
		}
	}
	co := &Coordinator{sx: sx, cl: cl}
	co.bindSolver()
	return co, nil
}

// Assign is the placement map both sides derive from the shared
// manifest: shard si is owned by worker si mod workers.
func Assign(shards, workers int) []int {
	p := make([]int, shards)
	for si := range p {
		p[si] = si % workers
	}
	return p
}

// bindSolver installs this epoch's remote solver on the index.
func (co *Coordinator) bindSolver() {
	partLens := make([]int, co.sx.Shards())
	for si := range partLens {
		partLens[si] = co.sx.PartLen(si)
	}
	co.sx.SetRemoteSolver(&epochSolver{cl: co.cl, epoch: co.sx.Epoch(), partLens: partLens})
}

// ApplyDelta publishes an update across the cluster with a two-phase
// epoch publish and returns the successor Coordinator. Order: the
// coordinator applies the delta to its factorless index (placement and
// cut bookkeeping only — no factorization), fans Prepare out to every
// worker in parallel (each refactorizes its dirty shards off to the
// side while old-epoch queries keep resolving), and commits only once
// every worker holds the stage. Any Prepare failure aborts the stage
// everywhere and returns ErrUnavailable with the old epoch fully
// intact; a Commit straggler is tolerated — it heals through the
// wrongEpoch→replay path on its next query.
func (co *Coordinator) ApplyDelta(batch *graph.Delta) (any, core.UpdateStats, error) {
	cl := co.cl
	cl.mu.Lock()
	defer cl.mu.Unlock()

	deltaBytes := batch.AppendBinary(nil)
	next, us, err := co.sx.ApplyDelta(batch)
	if err != nil {
		return nil, us, err
	}
	sx2 := next.(*shard.ShardedIndex)
	epoch2 := sx2.Epoch()

	prepBody := rpc.AppendPrepareRequest(nil, epoch2, deltaBytes)
	errs := make([]error, len(cl.clients))
	var wg sync.WaitGroup
	for w := range cl.clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, errs[w] = cl.clients[w].Call(rpc.OpPrepare, prepBody)
		}(w)
	}
	wg.Wait()
	// A worker that answered wrongEpoch or tore its connection may just
	// be lagging (restarted from disk): replay it current and retry its
	// Prepare once, sequentially — this is the slow path.
	for w, werr := range errs {
		if werr == nil {
			continue
		}
		if rerr := cl.replayLocked(w); rerr == nil {
			_, errs[w] = cl.clients[w].Call(rpc.OpPrepare, prepBody)
		}
	}
	for w, werr := range errs {
		if werr != nil {
			abortBody := rpc.AppendEpochRequest(nil, epoch2)
			for aw := range cl.clients {
				cl.clients[aw].Call(rpc.OpAbort, abortBody) //nolint:errcheck // best-effort cleanup; an orphaned stage is dropped on the worker's next publish
			}
			return nil, us, fmt.Errorf("%w: prepare epoch %d on worker %d: %v", rpc.ErrUnavailable, epoch2, w, werr)
		}
	}

	commitBody := rpc.AppendEpochRequest(nil, epoch2)
	for w := range cl.clients {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := cl.clients[w].Call(rpc.OpCommit, commitBody); err != nil {
				cl.errs[w].Add(1) // tolerated: heals via wrongEpoch→replay
			}
		}(w)
	}
	wg.Wait()

	cl.chain = append(cl.chain, chainEntry{epoch: epoch2, delta: deltaBytes})
	next2 := &Coordinator{sx: sx2, cl: cl}
	next2.bindSolver()
	return next2, us, nil
}

// Close drops the worker connections. The underlying factorless index
// holds no mappings, so there is nothing else to release.
func (co *Coordinator) Close() error {
	for _, c := range co.cl.clients {
		c.Close()
	}
	return co.sx.Close()
}

// N implements server.Engine.
func (co *Coordinator) N() int { return co.sx.N() }

// Restart implements server.Engine.
func (co *Coordinator) Restart() float64 { return co.sx.Restart() }

// Epoch reports the serving epoch (server /statz and update seeding).
func (co *Coordinator) Epoch() int { return co.sx.Epoch() }

// Shards reports the shard count.
func (co *Coordinator) Shards() int { return co.sx.Shards() }

// Graph exposes the current graph snapshot (WAL-mode ack validation).
func (co *Coordinator) Graph() *graph.Graph { return co.sx.Graph() }

// HomeShard reports which shard owns node u (selective cache flushes).
func (co *Coordinator) HomeShard(u int) int { return co.sx.HomeShard(u) }

// WALSeq reports the WAL position the loaded snapshot covers.
func (co *Coordinator) WALSeq() uint64 { return co.sx.WALSeq() }

// Search implements server.Engine.
func (co *Coordinator) Search(q int, opt core.SearchOptions) ([]topk.Result, core.SearchStats, error) {
	return co.sx.Search(q, opt)
}

// TopK answers top-k through the distributed push.
func (co *Coordinator) TopK(q, k int) ([]topk.Result, shard.QueryStats, error) {
	return co.sx.TopK(q, k)
}

// TopKBatch answers a batch through the distributed block push.
func (co *Coordinator) TopKBatch(qs []int, k int) ([][]topk.Result, shard.BatchStats, error) {
	return co.sx.TopKBatch(qs, k)
}

// TopKPersonalized implements server.Engine.
func (co *Coordinator) TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, core.SearchStats, error) {
	return co.sx.TopKPersonalized(seeds, k)
}

// Proximity implements server.Engine.
func (co *Coordinator) Proximity(q, u int) (float64, error) { return co.sx.Proximity(q, u) }

// ProximityVector implements server.Engine.
func (co *Coordinator) ProximityVector(q int) ([]float64, error) { return co.sx.ProximityVector(q) }

// ProximityVectorCtx is the cancellable refinement the server's cache
// fill path uses.
func (co *Coordinator) ProximityVectorCtx(ctx context.Context, q int) ([]float64, error) {
	return co.sx.ProximityVectorCtx(ctx, q)
}

// SearchBatch implements server.BatchEngine.
func (co *Coordinator) SearchBatch(queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error) {
	return co.sx.SearchBatch(queries)
}

// SearchBatchCtx implements server.BatchCtxEngine.
func (co *Coordinator) SearchBatchCtx(ctx context.Context, queries []core.BatchQuery) ([][]topk.Result, []core.SearchStats, error) {
	return co.sx.SearchBatchCtx(ctx, queries)
}

// Statz merges the index's build observability with per-worker serving
// stats: call latency quantiles, failed calls and replay rounds.
func (co *Coordinator) Statz() map[string]interface{} {
	doc := co.sx.Statz()
	workers := make([]map[string]interface{}, len(co.cl.clients))
	for w, c := range co.cl.clients {
		snap := co.cl.lat[w].Snapshot()
		workers[w] = map[string]interface{}{
			"addr":       c.Addr(),
			"shards":     countShards(co.cl.placement, w),
			"calls":      snap.Count,
			"meanMicros": snap.Mean() / 1e3,
			"p99Micros":  float64(snap.Quantile(0.99)) / 1e3,
			"errors":     co.cl.errs[w].Load(),
			"replays":    co.cl.reconnects[w].Load(),
		}
	}
	doc["cluster"] = map[string]interface{}{
		"workers":   workers,
		"baseEpoch": co.cl.baseEpoch,
		"chainLen":  len(co.cl.chain),
	}
	return doc
}

func countShards(placement []int, w int) int {
	n := 0
	for _, pw := range placement {
		if pw == w {
			n++
		}
	}
	return n
}
