// Package shard implements a partitioned K-dash index: the graph is split
// into balanced Louvain communities, one independent K-dash index is built
// per partition (concurrently, across a worker pool), and top-k queries
// are answered exactly by a shard-granular push that solves the query
// node's home shard through its inverted factors and propagates residual
// probability mass across cut edges into foreign shards.
//
// Exactness rests on two observations. First, each shard graph carries a
// ghost sink node absorbing the shard's outgoing cut weight, so the
// shard-local column normalisation equals the global one and the shard's
// factorized matrix is exactly the diagonal block D_s of the splitting
// W = D - (1-c)A_cross. Second, the push maintains the invariant
//
//	c e_q = W x + r
//
// with x, r >= 0: x grows monotonically towards the true proximity vector
// p = c W^{-1} e_q, and every entry of p - x is bounded by |r|_1 / c. Each
// processed unit of residual mass spawns at most
// (1-c)b / (c + (1-c)b) < 1 new mass (b = worst cut fraction of a
// column), so the residual vanishes geometrically and shards whose
// pending inflow can no longer raise any proximity above the tolerance
// are pruned without being solved — the paper's Amax-style estimation
// lifted to shard granularity via cut-edge mass.
//
// A ShardedIndex is immutable after construction: queries draw all
// their scratch from pooled push state, and dynamic updates are
// functional (Apply returns a successor epoch sharing untouched parts
// by pointer). Persistence mirrors the partitioning — one file per
// shard under a manifest (serialize.go) — so Open can memory-map shard
// files read-only and defer each one to the first query that solves
// the shard. See docs/ARCHITECTURE.md for the epoch/immutability
// contract and the directory format.
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kdash/internal/core"
	"kdash/internal/graph"
	"kdash/internal/louvain"
	"kdash/internal/lu"
	"kdash/internal/lu/kernels"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
)

// Options configures sharded index construction.
type Options struct {
	// Shards is the number of partitions. Zero selects one shard; values
	// above the node count are clamped.
	Shards int
	// Restart is the restart probability c (zero = the paper's 0.95).
	Restart float64
	// Reorder is the per-shard node ordering (normally reorder.Hybrid).
	Reorder reorder.Method
	// Seed drives Louvain and the per-shard orderings.
	Seed int64
	// Workers bounds concurrent shard builds (0 = all CPUs).
	Workers int
	// QueryTol is the relative residual-mass tolerance queries converge
	// to; proximities are exact within QueryTol/c of the true values.
	// Zero selects DefaultQueryTol.
	QueryTol float64
	// Assignment pins the node -> shard map explicitly instead of running
	// the Louvain partitioner; the shard count is 1 + the maximum value
	// and every shard must own at least one node. Shards is ignored when
	// set. This is how a from-scratch rebuild reproduces an incrementally
	// updated index bit-for-bit (see ShardedIndex.Assignment).
	Assignment []int
	// StalenessLimit is how many nodes may be appended to a shard by
	// Apply before the shard is locally re-partitioned (its nodes
	// re-homed to their best-connected shards). Zero selects
	// DefaultStalenessLimit; negative disables re-partitioning.
	StalenessLimit int
	// Precision selects the factor-strip value width queries solve with.
	// The zero value (lu.Float64) is exact; lu.Float32 streams
	// half-width value strips through the scatter kernels (accumulation
	// stays float64 — see lu.Precision for the error contract).
	Precision lu.Precision
	// PushWorkers enables the speculative parallel cross-shard push:
	// while the deterministic greedy loop solves the heaviest shard,
	// up to PushWorkers-1 background workers pre-solve the other
	// pending shards so their results are ready when the greedy order
	// reaches them. Answers are bit-identical to the sequential push.
	// Values below 2 (the zero default) keep the push sequential.
	PushWorkers int
}

// DefaultQueryTol keeps query answers exact to ~1e-15, far inside the
// 1e-9 the validation suite asserts.
const DefaultQueryTol = 1e-15

// DefaultStalenessLimit is the per-shard appended-node budget before
// Apply re-partitions the shard locally.
const DefaultStalenessLimit = 32

// BuildStats reports partition-parallel precompute cost.
type BuildStats struct {
	Shards        int
	PartitionTime time.Duration // Louvain + balancing
	BuildTime     time.Duration // wall clock across the worker pool
	ShardCPUTime  time.Duration // summed per-shard build time
	Sizes         []int         // nodes per shard
	CutEdges      int           // directed edges crossing shards
	CutWeightFrac float64       // cut weight / total weight
	NNZInverse    int           // summed nnz(L^-1)+nnz(U^-1) over shards
	Communities   int           // Louvain communities before balancing
	Modularity    float64
}

// cutEdge is one directed edge leaving a shard, with its transition
// probability pre-scaled by (1-c) — exactly the coefficient the push
// multiplies solved mass by when propagating to the destination shard.
type cutEdge struct {
	src      int // local id in the source shard
	dstShard int
	dst      int     // local id in the destination shard
	w        float64 // (1-c) * A[dst, src] under the global normalisation
}

// part is one shard: the nodes it owns, its K-dash index over the induced
// subgraph (+ ghost sink when the shard has outgoing cut weight), and its
// outgoing cut edges grouped by source node.
//
// The index itself may be deferred: a lazily opened directory (see
// LoadOptions.Lazy) leaves ix nil and sets lazy, so the shard file is
// only mapped when a query first pushes mass into the shard — reach the
// index through index() (or tryIndex for observability paths that must
// not force an open), never the field.
type part struct {
	nodes     []int // local -> global id
	ix        *core.Index
	lazy      *lazyIndex // non-nil: the index opens on first use
	sink      bool       // index has one extra sink node appended
	cuts      []cutEdge  // sorted by src
	cutPtr    []int      // cuts of local node v are cuts[cutPtr[v]:cutPtr[v+1]]
	nnzHint   int        // manifest v3 per-shard nnz, so stats need no open
	nnzHinted bool       // the hint is real (v3 manifest) vs absent (v2 lazy load)
}

// lazyIndex is the once-guarded deferred open of one shard's index
// file. It is shared by pointer when epochs share an unrebuilt part, so
// whichever epoch touches the shard first opens it for both.
type lazyIndex struct {
	once sync.Once
	done atomic.Bool // set after once ran; guards lock-free tryIndex reads
	open func() (*core.Index, error)
	ix   *core.Index
	err  error
}

// index returns the shard's core index, opening it on first use. An
// open failure (the file vanished or was corrupted between Load and the
// first query touching this shard) panics: callers sit deep inside the
// push loop where an error return does not exist, and the HTTP server
// recovers panics into 500s. Load-time validation (manifest shape,
// eager OpenAll when not lazy) makes this a genuine I/O-failure path,
// not an expected one.
func (p *part) index() *core.Index {
	if p.lazy == nil {
		return p.ix
	}
	if err := p.openIndex(); err != nil {
		panic(fmt.Sprintf("shard: %v", err))
	}
	return p.lazy.ix
}

// openIndex forces the deferred open, returning its error. It is the
// non-panicking form index() wraps; OpenAll uses it to surface open
// failures as ordinary errors at load time.
func (p *part) openIndex() error {
	if p.lazy == nil {
		return nil
	}
	l := p.lazy
	l.once.Do(func() {
		l.ix, l.err = l.open()
		l.open = nil // the closure pins the directory paths; drop it
		l.done.Store(true)
	})
	return l.err
}

// tryIndex returns the index if it is already open and nil otherwise,
// without forcing an open — the race-safe read observability paths
// (Statz) and stats fallbacks use.
func (p *part) tryIndex() *core.Index {
	if p.lazy == nil {
		return p.ix
	}
	if p.lazy.done.Load() && p.lazy.err == nil {
		return p.lazy.ix
	}
	return nil
}

// nnzInverse reports the shard's inverse-factor nonzeros without
// forcing an open: the live index when available, the manifest hint
// otherwise. ok is false only for an unopened shard with no hint (a
// lazily loaded pre-v3 directory), where the true value is unknowable
// without an open — callers must not treat the 0 as a count.
func (p *part) nnzInverse() (nnz int, ok bool) {
	if ix := p.tryIndex(); ix != nil {
		return ix.Stats().NNZInverse, true
	}
	return p.nnzHint, p.nnzHinted
}

// share returns a copy of the part for a successor epoch that did not
// rebuild it: the node list, index (open or deferred — the lazyIndex is
// shared by pointer) and cut lists carry over.
func (p *part) share() *part {
	return &part{nodes: p.nodes, ix: p.ix, lazy: p.lazy, sink: p.sink, nnzHint: p.nnzHint, nnzHinted: p.nnzHinted, cuts: p.cuts, cutPtr: p.cutPtr}
}

// ShardedIndex is a partitioned K-dash index. Like core.Index it is
// immutable after construction and safe for concurrent queries; dynamic
// updates are functional (Apply returns a successor index), so an epoch
// in a reader's hands never changes underneath it.
type ShardedIndex struct {
	n     int
	c     float64
	qtol  float64
	home  []int // global node -> shard
	local []int // global node -> local id within its shard
	parts []*part
	stats BuildStats

	// Update-path state: the current graph snapshot (nil when loaded
	// from a pre-v2 manifest, which marks the index non-updatable), the
	// build inputs Apply reuses so a rebuilt shard is bit-identical to a
	// from-scratch one, the per-shard appended-node staleness counters,
	// and the epoch number (0 for a fresh build, +1 per Apply).
	g              *graph.Graph
	method         reorder.Method
	seed           int64
	workers        int
	stalenessLimit int
	staleness      []int
	epoch          int

	// Write-ahead-log position (manifest v4): the last WAL sequence
	// number folded into these factors and the live segment names at
	// save time. Set by SetWALInfo before Save; zero for indexes that
	// never ran under a WAL. Not carried across Apply — the compactor
	// stamps each snapshot explicitly with the position it knows it
	// covers.
	walSeq      uint64
	walSegments []string

	// Query-path tuning carried from Options/LoadOptions: the factor
	// value precision every shard index solves with, and the worker
	// budget of the speculative parallel push (<2 = sequential).
	precision   lu.Precision
	pushWorkers int

	// gOnce/gLoad defer the graph snapshot's parse for lazily opened
	// directories: the snapshot exists only for Apply (and re-Save), so
	// a query-serving cold start never pays the O(m) edge-list parse.
	// ensureGraph forces it; gErr holds a deferred parse failure.
	gOnce sync.Once
	gLoad func() (*graph.Graph, error)
	gErr  error

	// mapCapable records whether this index was opened with an
	// mmap-capable mode on an mmap-capable platform — the configured
	// backing Mapped reports; which shard files are actually mapped
	// right now is per-shard state in Statz.
	mapCapable bool

	// revAdj[d] lists the shards with a cut edge into shard d, the
	// shard-granular reverse adjacency single-pair queries bound residual
	// influence with. Derived lazily from the cut lists (Build and Load
	// both leave it unset) and immutable afterwards.
	revOnce sync.Once
	revAdj  [][]int

	// inTargets[si] lists the local ids of shard si that cut edges point
	// at — the only rows a residual vector can ever be nonzero on, which
	// the batched push spot-cleans instead of rewiping whole vectors.
	// Same lazy-once lifecycle as revAdj.
	inTOnce   sync.Once
	inTargets [][]int

	// cutBits[si] holds one bit per local row of shard si: set iff the
	// row has outgoing cut edges. The push's consume loop tests the bit
	// instead of loading two cutPtr offsets per solved row — at a bit
	// per row the whole table stays cache-resident, and most solved
	// rows are interior (no cuts), so the common case costs one L1 load.
	// Same lazy-once lifecycle as revAdj.
	cutBitsOnce sync.Once
	cutBits     [][]uint64

	// pushPool recycles complete single-query push states (solution and
	// residual vectors, touched-entry lists, per-shard sparse solvers)
	// across queries; every request checks a private instance out, so the
	// pool is the concurrent-safe source of per-query scratch and the
	// steady-state query path allocates only its result set.
	pushPool sync.Pool

	// pairW memoizes the single-pair push's per-target-shard influence
	// weights (pairWeights); each target's vector is computed once and
	// immutable afterwards.
	pairWOnce sync.Once
	pairW     []atomic.Pointer[[]float64]

	// Distributed-serving state (see remote.go). factorless marks a
	// coordinator-side index: buildPart skips the factorization (and
	// lazy opens never happen because every solve routes remotely), so
	// the index holds only the placement map, cut lists and graph
	// snapshot. remote, when set, routes every per-shard factor solve
	// through a RemoteSolver; it is not carried across Apply — the
	// coordinator rebinds a per-epoch solver on each successor. The
	// pools back the worker-side SolveShardSparse/SolveShardBatch RPC
	// surface with reusable per-part solvers.
	factorless bool
	remote     RemoteSolver
	rpoolOnce  sync.Once
	rsparse    []sync.Pool
	rbatch     []sync.Pool

	// solveCounts tracks cumulative factor solves per shard — the
	// traffic-weighted counterpart of shardsOpened, exposed through
	// Statz (and from there /metrics) so operators can see which
	// shards queries actually land on. Built lazily like revAdj; the
	// counters are per-epoch (a successor from Apply starts at zero),
	// which Prometheus counter semantics tolerate as a reset.
	solveOnce   sync.Once
	solveCounts []atomic.Int64
}

// solveCounters returns the per-shard solve counters, building them on
// first use.
func (sx *ShardedIndex) solveCounters() []atomic.Int64 {
	sx.solveOnce.Do(func() { sx.solveCounts = make([]atomic.Int64, len(sx.parts)) })
	return sx.solveCounts
}

// cutTargets returns, per shard, the deduplicated local ids receiving
// cut-edge mass, building the lists on first use.
func (sx *ShardedIndex) cutTargets() [][]int {
	sx.inTOnce.Do(func() {
		s := len(sx.parts)
		targets := make([][]int, s)
		seen := make([][]bool, s)
		for si := range seen {
			seen[si] = make([]bool, sx.partLen(si))
		}
		for _, p := range sx.parts {
			for _, e := range p.cuts {
				if !seen[e.dstShard][e.dst] {
					seen[e.dstShard][e.dst] = true
					targets[e.dstShard] = append(targets[e.dstShard], e.dst)
				}
			}
		}
		sx.inTargets = targets
	})
	return sx.inTargets
}

// cutEdgeBits returns the per-shard has-cut-edges bitsets, building
// them on first use.
func (sx *ShardedIndex) cutEdgeBits() [][]uint64 {
	sx.cutBitsOnce.Do(func() {
		bits := make([][]uint64, len(sx.parts))
		for si, p := range sx.parts {
			b := make([]uint64, (len(p.nodes)+63)/64)
			for lv := 0; lv+1 < len(p.cutPtr); lv++ {
				if p.cutPtr[lv+1] > p.cutPtr[lv] {
					b[lv>>6] |= 1 << (uint(lv) & 63)
				}
			}
			bits[si] = b
		}
		sx.cutBits = bits
	})
	return sx.cutBits
}

// reverseShardAdj returns the deduplicated reverse adjacency of the
// shard digraph, building it on first use.
func (sx *ShardedIndex) reverseShardAdj() [][]int {
	sx.revOnce.Do(func() {
		s := len(sx.parts)
		adj := make([][]int, s)
		seen := make([]int, s) // seen[d] == si+1: edge si -> d recorded
		for si, p := range sx.parts {
			for _, e := range p.cuts {
				if seen[e.dstShard] != si+1 {
					seen[e.dstShard] = si + 1
					adj[e.dstShard] = append(adj[e.dstShard], si)
				}
			}
		}
		sx.revAdj = adj
	})
	return sx.revAdj
}

// Build partitions the graph and builds one K-dash index per partition
// concurrently.
func Build(g *graph.Graph, opt Options) (*ShardedIndex, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("shard: cannot index an empty graph")
	}
	c := opt.Restart
	if c == 0 {
		c = rwr.DefaultRestart
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("shard: restart probability %v outside (0,1)", c)
	}
	s := opt.Shards
	if s <= 0 {
		s = 1
	}
	if s > n {
		s = n
	}
	qtol := opt.QueryTol
	if qtol <= 0 {
		qtol = DefaultQueryTol
	}

	start := time.Now()
	var (
		home        []int
		communities int
		modularity  float64
	)
	if opt.Assignment != nil {
		if len(opt.Assignment) != n {
			return nil, fmt.Errorf("shard: assignment has %d entries, graph has %d nodes", len(opt.Assignment), n)
		}
		s = 0
		for u, si := range opt.Assignment {
			if si < 0 {
				return nil, fmt.Errorf("shard: assignment maps node %d to shard %d", u, si)
			}
			if si+1 > s {
				s = si + 1
			}
		}
		counts := make([]int, s)
		for _, si := range opt.Assignment {
			counts[si]++
		}
		for si, cnt := range counts {
			if cnt == 0 {
				return nil, fmt.Errorf("shard: assignment leaves shard %d of %d empty", si, s)
			}
		}
		home = append([]int(nil), opt.Assignment...)
	} else {
		home, communities, modularity = partition(g, s, opt.Seed)
	}
	partTime := time.Since(start)

	limit := opt.StalenessLimit
	if limit == 0 {
		limit = DefaultStalenessLimit
	}
	sx := &ShardedIndex{
		n:              n,
		c:              c,
		qtol:           qtol,
		home:           home,
		local:          make([]int, n),
		parts:          make([]*part, s),
		g:              g,
		method:         opt.Reorder,
		seed:           opt.Seed,
		workers:        opt.Workers,
		stalenessLimit: limit,
		staleness:      make([]int, s),
		precision:      opt.Precision,
		pushWorkers:    opt.PushWorkers,
	}
	for i := range sx.parts {
		sx.parts[i] = &part{}
	}
	for u := 0; u < n; u++ {
		p := sx.parts[home[u]]
		sx.local[u] = len(p.nodes)
		p.nodes = append(p.nodes, u)
	}

	cutEdges, cutW, totalW := sx.fillCuts(g, nil)

	all := make([]int, s)
	for si := range all {
		all[si] = si
	}
	tBuild := time.Now()
	cpu, err := sx.buildParts(g, all, opt.Workers)
	if err != nil {
		return nil, err
	}
	buildTime := time.Since(tBuild)

	nnz := 0
	sizes := make([]int, s)
	for i, p := range sx.parts {
		sizes[i] = len(p.nodes)
		nnz += p.ix.Stats().NNZInverse
	}
	frac := 0.0
	if totalW > 0 {
		frac = cutW / totalW
	}
	sx.stats = BuildStats{
		Shards:        s,
		PartitionTime: partTime,
		BuildTime:     buildTime,
		ShardCPUTime:  cpu,
		Sizes:         sizes,
		CutEdges:      cutEdges,
		CutWeightFrac: frac,
		NNZInverse:    nnz,
		Communities:   communities,
		Modularity:    modularity,
	}
	return sx, nil
}

// buildParts builds the given shards' indexes across a worker pool and
// reports the summed per-shard CPU time. With several shards in flight
// the pool supplies the parallelism, so each individual build inverts
// its factors single-threaded; a lone shard hands the full worker
// budget to the factor inversion instead. Build (every shard) and
// Apply (the dirty set) share this path, which is what keeps an
// incrementally rebuilt block bit-identical to a from-scratch one.
func (sx *ShardedIndex) buildParts(g *graph.Graph, shards []int, workers int) (cpu time.Duration, err error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	innerWorkers := 1
	if len(shards) == 1 {
		innerWorkers = workers
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, workers)
		mu       sync.Mutex
		firstErr error
	)
	for _, si := range shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(si int) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := sx.buildPart(g, si, sx.method, sx.seed+int64(si), innerWorkers)
			mu.Lock()
			cpu += time.Since(t0)
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", si, err)
			}
			mu.Unlock()
		}(si)
	}
	wg.Wait()
	return cpu, firstErr
}

// partition assigns every node to one of s balanced shards: nodes are
// ordered community-major (Louvain), then chunked contiguously, so most
// communities land intact in one shard and chunk boundaries cut few
// edges. Returns the assignment plus the community count and modularity
// for the build stats.
func partition(g *graph.Graph, s int, seed int64) (home []int, communities int, modularity float64) {
	n := g.N()
	home = make([]int, n)
	if s == 1 {
		return home, 1, 0
	}
	res := louvain.Partition(g, seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if res.Community[order[a]] != res.Community[order[b]] {
			return res.Community[order[a]] < res.Community[order[b]]
		}
		return order[a] < order[b]
	})
	// Chunk sizes n/s, the first n%s chunks one node larger.
	base, extra := n/s, n%s
	at := 0
	for si := 0; si < s; si++ {
		size := base
		if si < extra {
			size++
		}
		for j := 0; j < size; j++ {
			home[order[at]] = si
			at++
		}
	}
	return home, res.K, res.Q
}

// fillCuts recomputes the outgoing cut-edge lists (probabilities
// pre-scaled by (1-c)) of the shards marked in mask — nil meaning every
// shard — and reports global cut statistics, which are always re-summed
// from the graph. Parts outside the mask are never written, so the
// update path can hand shared (old-epoch) part structs to the new index
// and patch only the shards whose cuts actually changed.
func (sx *ShardedIndex) fillCuts(g *graph.Graph, mask []bool) (cutEdges int, cutW, totalW float64) {
	patched := func(si int) bool { return mask == nil || mask[si] }
	for si, p := range sx.parts {
		if patched(si) {
			p.cuts = nil
			p.cutPtr = make([]int, len(p.nodes)+1)
		}
	}
	for v := 0; v < sx.n; v++ {
		sv := sx.home[v]
		out := g.OutWeightSum(v)
		g.OutNeighbors(v, func(u int, w float64) {
			totalW += w
			if sx.home[u] != sv {
				cutEdges++
				cutW += w
				if patched(sv) {
					p := sx.parts[sv]
					p.cuts = append(p.cuts, cutEdge{
						src:      sx.local[v],
						dstShard: sx.home[u],
						dst:      sx.local[u],
						w:        (1 - sx.c) * w / out,
					})
				}
			}
		})
	}
	for si, p := range sx.parts {
		if !patched(si) {
			continue
		}
		sort.SliceStable(p.cuts, func(a, b int) bool { return p.cuts[a].src < p.cuts[b].src })
		for _, e := range p.cuts {
			p.cutPtr[e.src+1]++
		}
		for v := 0; v < len(p.nodes); v++ {
			p.cutPtr[v+1] += p.cutPtr[v]
		}
	}
	return cutEdges, cutW, totalW
}

// buildPart constructs shard si's graph and K-dash index. The shard graph
// is the induced subgraph plus, when the shard has outgoing cut weight, a
// ghost sink absorbing it — so every column keeps its *global*
// normalisation and the factorized matrix is exactly the diagonal block
// of W = I - (1-c)A restricted to the shard.
func (sx *ShardedIndex) buildPart(g *graph.Graph, si int, method reorder.Method, seed int64, workers int) error {
	p := sx.parts[si]
	ns := len(p.nodes)
	leak := make([]float64, ns)
	hasLeak := false
	for lv, v := range p.nodes {
		g.OutNeighbors(v, func(u int, w float64) {
			if sx.home[u] != si {
				leak[lv] += w
				hasLeak = true
			}
		})
	}
	if sx.factorless {
		// Coordinator-side index: the placement map, cut lists and sink
		// flags are all the local push bookkeeping needs — the factor
		// solves run on workers, so the refactorization is skipped and
		// p.ix stays nil.
		p.sink = hasLeak
		return nil
	}
	total := ns
	if hasLeak {
		total++ // ghost sink at local id ns
	}
	b := graph.NewBuilder(total)
	for lv, v := range p.nodes {
		var err error
		g.OutNeighbors(v, func(u int, w float64) {
			if err == nil && sx.home[u] == si {
				err = b.AddEdge(lv, sx.local[u], w)
			}
		})
		if err != nil {
			return err
		}
		if leak[lv] > 0 {
			if err := b.AddEdge(lv, ns, leak[lv]); err != nil {
				return err
			}
		}
	}
	ix, err := core.BuildIndex(b.Build(), core.BuildOptions{
		Restart: sx.c,
		Reorder: method,
		Seed:    seed,
		Workers: workers,
	})
	if err != nil {
		return err
	}
	// The block's own ghost graph is never replayed — updates rebuild
	// dirty blocks from the partition-level snapshot (sx.g) — so keeping
	// it would pin a second full copy of the adjacency across the parts.
	ix.ReleaseGraph()
	ix.SetPrecision(sx.precision)
	p.ix = ix
	p.sink = hasLeak
	return nil
}

// N reports the number of indexed nodes.
func (sx *ShardedIndex) N() int { return sx.n }

// Restart reports the restart probability c the index was built with.
func (sx *ShardedIndex) Restart() float64 { return sx.c }

// Shards reports the number of partitions.
func (sx *ShardedIndex) Shards() int { return len(sx.parts) }

// HomeShard reports which shard owns node u.
func (sx *ShardedIndex) HomeShard(u int) int { return sx.home[u] }

// Stats reports the partition-parallel build statistics.
func (sx *ShardedIndex) Stats() BuildStats { return sx.stats }

// Statz reports observability fields for the server's /statz endpoint.
// It never forces a lazy shard open: unopened shards report their
// manifest nnz hint and opened=false, so operators can watch demand
// paging do its job (shardsOpened climbing towards shards under real
// traffic, staying put for skewed traffic).
func (sx *ShardedIndex) Statz() map[string]interface{} {
	shards := make([]map[string]interface{}, len(sx.parts))
	counters := sx.solveCounters()
	opened := 0
	mappedBytes := 0
	solves := int64(0)
	for i, p := range sx.parts {
		ix := p.tryIndex()
		if ix != nil {
			opened++
			mappedBytes += ix.MappedBytes()
		}
		nnz, _ := p.nnzInverse()
		sc := counters[i].Load()
		solves += sc
		shards[i] = map[string]interface{}{
			"nodes":      len(p.nodes),
			"cutEdges":   len(p.cuts),
			"nnzInverse": nnz,
			"opened":     ix != nil,
			"solves":     sc,
		}
	}
	precision := "float64"
	if sx.precision == lu.Float32 {
		precision = "float32"
	}
	return map[string]interface{}{
		"kind":          "sharded",
		"nodes":         sx.n,
		"restart":       sx.c,
		"shards":        len(sx.parts),
		"shardsOpened":  opened,
		"mappedBytes":   mappedBytes,
		"solves":        solves,
		"cutEdges":      sx.stats.CutEdges,
		"cutWeightFrac": sx.stats.CutWeightFrac,
		"nnzInverse":    sx.stats.NNZInverse,
		"kernels":       kernels.Impl(),
		"precision":     precision,
		"pushWorkers":   sx.pushWorkers,
		"perShard":      shards,
	}
}

// Mapped reports whether the index was opened with memory-mapped
// backing (an mmap-capable mode on a platform that supports it). It
// describes the configured backing, not per-shard state: lazily
// deferred shards count once opened, and legacy-format shard files
// inside a mapped directory still fall back to private parses
// (visible per shard in Statz).
func (sx *ShardedIndex) Mapped() bool { return sx.mapCapable }

// OpenAll forces every deferred shard open, surfacing the first failure
// as an ordinary error. Eager loads run it so a broken directory fails
// at Load rather than mid-query; it is also the warm-up hook for
// operators who want the whole index resident before taking traffic.
func (sx *ShardedIndex) OpenAll() error {
	for si, p := range sx.parts {
		if err := p.openIndex(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return nil
}

// Close releases every opened shard's backing file mapping. A
// memory-mapped index must not be queried after Close; indexes loaded
// into private memory (and built ones) close as a no-op. Shared epochs
// beware: successors of Apply share unrebuilt parts — and their
// mappings — with their predecessor, so close only the last epoch of a
// chain.
func (sx *ShardedIndex) Close() error {
	var first error
	for _, p := range sx.parts {
		if ix := p.tryIndex(); ix != nil {
			if err := ix.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
