// Package core implements K-dash, the paper's contribution: exact top-k
// search for Random Walk with Restart proximity.
//
// An Index holds the precomputed state of Section 4.2 — the node
// reordering, the sparse inverse triangular factors L^{-1} (by column) and
// U^{-1} (by row) of W = I - (1-c)A, and the Amax tables — and serves
// queries with the Section 4.3/4.4 search: a breadth-first tree from the
// query node, O(1) incremental upper-bound estimation (Definitions 1–2),
// and safe early termination (Lemmas 1–2, Theorem 2).
//
// An Index is immutable after construction and safe for concurrent
// queries; all per-query scratch lives in pooled workspaces, so the
// steady-state query path allocates only its O(k) result set and never
// writes a factor array. That write-free contract is what lets Save lay
// the arrays out as page-aligned sections (serialize_v3.go) and
// OpenIndexFile serve queries straight out of a read-only file mapping.
// See docs/ARCHITECTURE.md for the layer map, the immutability and
// pooling contracts, and the on-disk format specifications.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"kdash/internal/graph"
	"kdash/internal/lu"
	"kdash/internal/lu/kernels"
	"kdash/internal/mmapio"
	"kdash/internal/obs"
	"kdash/internal/reorder"
	"kdash/internal/rwr"
	"kdash/internal/sparse"
	"kdash/internal/topk"
)

// BuildOptions configures index construction.
type BuildOptions struct {
	// Restart is the restart probability c. Zero selects the paper's
	// default 0.95.
	Restart float64
	// Reorder selects the node ordering used to keep the inverse factors
	// sparse. The zero value is reorder.Degree; callers should normally
	// use reorder.Hybrid, the paper's best performer.
	Reorder reorder.Method
	// Seed feeds Louvain and the Random ordering.
	Seed int64
	// DropTol, when positive, discards tiny inverse-factor entries. This
	// breaks the exactness guarantee and exists only for the ablation
	// study; leave zero for exact search.
	DropTol float64
	// Workers bounds goroutines used for factor inversion (0 = all CPUs).
	Workers int
}

// BuildStats reports precomputation cost, the quantities behind the
// paper's Figures 5 and 6.
type BuildStats struct {
	Method        reorder.Method
	ReorderTime   time.Duration
	FactorizeTime time.Duration
	InvertTime    time.Duration
	TotalTime     time.Duration
	NNZFactors    int // nnz(L) + nnz(U)
	NNZInverse    int // nnz(L^-1) + nnz(U^-1), Figure 5's numerator
	Edges         int // m, Figure 5's denominator
	InverseRatio  float64
}

// Index is a prebuilt K-dash search structure. It is safe for concurrent
// queries: all fields are read-only after construction.
type Index struct {
	n int
	c float64
	// The query structures below are written only during construction and
	// load (//kdash:mutates-factors functions): under an mmap mode they
	// alias a PROT_READ file mapping, where a write is a segfault.
	//
	//kdash:readonly
	perm []int // original -> internal
	//kdash:readonly
	inv []int // internal -> original

	//kdash:readonly
	a *sparse.CSC // reordered column-normalised adjacency
	//kdash:readonly
	linv *sparse.CSC // L^{-1}, by column
	//kdash:readonly
	uinv *sparse.CSR // U^{-1}, by row

	amax float64 // max element of A
	//kdash:readonly
	amaxCol []float64 // Amax(u): max element of column u of A
	//kdash:readonly
	selfA []float64 // A_uu, for the c' factor of Definition 1

	// invFac lazily rebinds the inverse factors as an lu.Inverse so the
	// single-lane sparse kernel (lu.SparseSolver) and the batch solver
	// share one lazily transposed U^{-1} (built on first support-driven
	// apply; never serialised — loads rebuild it on first use).
	invFacOnce sync.Once
	invFac     *lu.Inverse

	// swPool recycles tree-search workspaces and sparsePool single-lane
	// solvers across queries, so the steady-state query path performs no
	// O(n) allocation. Both are concurrency-safe checkouts: every request
	// takes a private instance and returns it when done.
	swPool     sync.Pool
	sparsePool sync.Pool

	stats BuildStats

	// srcGraph and opts are retained so the index can rebuild itself from
	// a graph delta (Rebuild); epoch counts rebuilds along the chain.
	// LoadIndex leaves srcGraph nil — the serialised form carries only the
	// query structures — which marks the index as non-updatable.
	srcGraph *graph.Graph
	opts     BuildOptions
	epoch    int

	// backing is the sectioned container a loaded v3 index's arrays
	// live in — a read-only file mapping for OpenIndexFile in an mmap
	// mode, a private buffer otherwise. nil for built indexes and legacy
	// loads. Mapped arrays are immutable at the MMU level; Close releases
	// the mapping.
	backing *mmapio.File

	// precision is the factor-value width queries solve at (see
	// SetPrecision); loadedBlkL/loadedBlkU carry pre-built blocked
	// strips from a v3 file into the lazily bound lu.Inverse.
	precision  lu.Precision
	loadedBlkL *lu.BlockedCSC
	loadedBlkU *lu.BlockedCSC
}

// inverseFactors returns the index's factors as an lu.Inverse, built
// once. The internal-to-original permutation is baked in as the Remap,
// so the single-lane kernel's scatters land directly in original node
// ids and its solutions need no per-support mapping pass.
func (ix *Index) inverseFactors() *lu.Inverse {
	ix.invFacOnce.Do(func() {
		ix.invFac = &lu.Inverse{N: ix.n, Linv: ix.linv, Uinv: ix.uinv, Remap: ix.inv, Precision: ix.precision}
		if ix.loadedBlkL != nil && ix.loadedBlkU != nil {
			ix.invFac.InstallBlocked(ix.loadedBlkL, ix.loadedBlkU)
		}
	})
	return ix.invFac
}

// SetPrecision selects the factor-value width for the single-lane solve
// path: lu.Float64 (exact, the default) or lu.Float32 (half the value
// bandwidth; see lu.Precision for the error contract). Must be called
// before the first query on the index — the choice binds when the
// solve kernels first run.
func (ix *Index) SetPrecision(p lu.Precision) { ix.precision = p }

// uinvByColumn returns U^{-1} in column-major form, building it once.
func (ix *Index) uinvByColumn() *sparse.CSC {
	return ix.inverseFactors().UinvByColumn()
}

// BuildIndex precomputes a K-dash index for the graph.
//
//kdash:mutates-factors
func BuildIndex(g *graph.Graph, opt BuildOptions) (*Index, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("core: cannot index an empty graph")
	}
	c := opt.Restart
	if c == 0 {
		c = rwr.DefaultRestart
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("core: restart probability %v outside (0,1)", c)
	}
	start := time.Now()
	perm := reorder.Compute(g, opt.Reorder, opt.Seed)
	reorderTime := time.Since(start)

	a := g.ColumnNormalized().PermuteSym(perm)

	tFac := time.Now()
	fac, err := lu.Decompose(lu.BuildW(a, c))
	if err != nil {
		return nil, fmt.Errorf("core: factorizing W: %w", err)
	}
	facTime := time.Since(tFac)

	tInv := time.Now()
	inverse := fac.Invert(lu.Options{DropTol: opt.DropTol, Workers: opt.Workers})
	invTime := time.Since(tInv)

	opt.Restart = c // retain the resolved value so Rebuild chains identically
	n := g.N()
	ix := &Index{
		n:        n,
		c:        c,
		srcGraph: g,
		opts:     opt,
		perm:     perm,
		inv:      reorder.Invert(perm),
		a:        a,
		linv:     inverse.Linv,
		uinv:     inverse.Uinv,
		amax:     a.Max(),
		amaxCol:  a.ColMax(),
		selfA:    make([]float64, n),
	}
	for u := 0; u < n; u++ {
		ix.selfA[u] = a.At(u, u)
	}
	ix.stats = BuildStats{
		Method:        opt.Reorder,
		ReorderTime:   reorderTime,
		FactorizeTime: facTime,
		InvertTime:    invTime,
		TotalTime:     time.Since(start),
		NNZFactors:    fac.NNZL() + fac.NNZU(),
		NNZInverse:    inverse.NNZ(),
		Edges:         g.M(),
	}
	if g.M() > 0 {
		ix.stats.InverseRatio = float64(ix.stats.NNZInverse) / float64(g.M())
	}
	return ix, nil
}

// N reports the number of indexed nodes.
func (ix *Index) N() int { return ix.n }

// Restart reports the restart probability c the index was built with.
func (ix *Index) Restart() float64 { return ix.c }

// Stats reports precomputation statistics.
func (ix *Index) Stats() BuildStats { return ix.stats }

// SearchStats reports per-query work, the quantities behind Figures 7
// and 9.
type SearchStats struct {
	Visited               int  // nodes whose estimate was evaluated
	ProximityComputations int  // exact proximities computed via the factors
	Terminated            bool // whether pruning stopped the search early
}

// SearchOptions configures a single query.
type SearchOptions struct {
	K int
	// DisablePruning computes the exact proximity of every reachable node
	// (the "Without pruning" series of Figure 7).
	DisablePruning bool
	// RandomRoot roots the visit order at an arbitrary node instead of
	// the query (the "Random" series of Figure 9). Estimates fall back to
	// a layer-free upper bound, so per-node skipping still never discards
	// an answer, but early termination is impossible.
	RandomRoot bool
	// RootSeed picks the random root deterministically.
	RootSeed int64
	// Exclude removes nodes (original ids) from the answer set without
	// affecting the proximity computation — the common "recommend items
	// the user has not already consumed" filter. Excluded nodes still
	// participate in the estimation (they may carry proximity mass); they
	// are only barred from the top-k heap.
	Exclude map[int]bool
	// Ctx, when non-nil, cancels the query: engines check it at coarse
	// boundaries (a sharded engine between shard solves, never per
	// node) and abandon the solve with the context's error. A nil Ctx
	// is never checked — the hot path pays one branch.
	Ctx context.Context
	// Trace, when non-nil, records the query's execution structure
	// (shard solve schedule, residual-bound trajectory, per-phase wall
	// clock) into the pointed-to recorder. The caller owns the
	// instance; engines only append. Nil disables all recording and
	// all timing syscalls.
	Trace *obs.QueryTrace
}

// TopK returns the K nodes with the highest RWR proximity w.r.t. query
// node q, exactly (Theorem 2). Results use original node ids and are
// sorted by descending proximity. If fewer than K nodes are reachable
// from q, only the reachable ones are returned: every other node has
// proximity exactly zero.
func (ix *Index) TopK(q, k int) ([]topk.Result, SearchStats, error) {
	return ix.Search(q, SearchOptions{K: k})
}

// searchWS is the per-query scratch a tree search needs. A batch reuses
// one instance across its queries so a large index does not pay two O(n)
// allocations (plus their zeroing) per query: the proximity workspace is
// spot-cleaned after each query and the BFS state is invalidated by
// bumping the generation counter instead of rewriting the arrays.
type searchWS struct {
	ws    []float64 // scattered L^{-1} r; only scattered entries are live
	layer []int     // BFS layer of u, valid only where mark[u] == gen
	mark  []int
	gen   int
	queue []int
}

func (ix *Index) newSearchWS() *searchWS {
	return &searchWS{
		ws:    make([]float64, ix.n),
		layer: make([]int, ix.n),
		mark:  make([]int, ix.n),
		queue: make([]int, 0, 256),
	}
}

// getSearchWS checks a clean search workspace out of the pool (queries
// leave their workspace spot-cleaned, so pooled instances are reusable
// as-is); putSearchWS returns it.
//
//kdash:pooled
func (ix *Index) getSearchWS() *searchWS {
	if sw, ok := ix.swPool.Get().(*searchWS); ok {
		return sw
	}
	return ix.newSearchWS()
}

//kdash:release
func (ix *Index) putSearchWS(sw *searchWS) { ix.swPool.Put(sw) }

// Search runs a query with full control over the search strategy. The
// workspace comes from a per-index pool, so a steady-state query
// allocates only its result set.
func (ix *Index) Search(q int, opt SearchOptions) ([]topk.Result, SearchStats, error) {
	sw := ix.getSearchWS()
	results, stats, err := ix.search(q, opt, sw)
	ix.putSearchWS(sw)
	return results, stats, err
}

// search runs one query against a caller-supplied workspace, leaving the
// workspace clean for the next query of a batch.
//
//kdash:deterministic
func (ix *Index) search(q int, opt SearchOptions, sw *searchWS) ([]topk.Result, SearchStats, error) {
	var stats SearchStats
	if q < 0 || q >= ix.n {
		return nil, stats, fmt.Errorf("core: query node %d outside [0,%d)", q, ix.n)
	}
	if opt.K <= 0 {
		return nil, stats, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	// The monolithic search is one uninterruptible factor sweep, so the
	// context is checked once up front: a request whose client is
	// already gone never starts the work.
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("core: query cancelled: %w", err)
		}
	}
	var tSolve time.Time
	if opt.Trace != nil {
		tSolve = time.Now() //kdash:allow(determinism) phase timing feeds only the trace block
	}
	qi := ix.perm[q] // internal id

	// L^{-1} e_q scattered into a dense workspace for O(1) lookups while
	// walking rows of U^{-1}.
	for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
		sw.ws[ix.linv.RowIdx[i]] = ix.linv.Val[i]
	}

	heap := topk.New(opt.K)
	excluded := ix.internalExclusions(opt.Exclude)

	if opt.RandomRoot {
		ix.searchRandomRoot(qi, heap, sw.ws, opt, excluded, &stats)
	} else {
		ix.searchTree([]int{qi}, heap, sw, opt, excluded, &stats)
	}

	// Spot-clean the scattered column so the workspace is reusable.
	for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
		sw.ws[ix.linv.RowIdx[i]] = 0
	}

	var tRank time.Time
	if opt.Trace != nil {
		tRank = time.Now() //kdash:allow(determinism) phase timing feeds only the trace block
		opt.Trace.SolveNS += tRank.Sub(tSolve).Nanoseconds()
	}
	results := heap.Results()
	for i := range results {
		results[i].Node = ix.inv[results[i].Node]
	}
	if tr := opt.Trace; tr != nil {
		tr.RankNS += time.Since(tRank).Nanoseconds() //kdash:allow(determinism) phase timing feeds only the trace block
		// The monolithic search has no shard granularity: the trace
		// carries phase timings and work counts, no solve steps.
		tr.NodesEvaluated += stats.ProximityComputations
		tr.Converged = true
	}
	return results, stats, nil
}

// BatchQuery is one query of a batched execution: a query node, its
// answer-set size and an optional exclusion set (original node ids).
type BatchQuery struct {
	Q       int
	K       int
	Exclude map[int]bool
}

// SearchBatch answers a block of queries, validating every query before
// any work happens so a bad entry fails the batch without partial
// execution. The queries share one search workspace, which removes the
// per-query O(n) allocate-and-zero cost that dominates small pruned
// searches on large indexes. Answers are identical to issuing each query
// through Search.
func (ix *Index) SearchBatch(queries []BatchQuery) ([][]topk.Result, []SearchStats, error) {
	return ix.SearchBatchCtx(nil, queries)
}

// SearchBatchCtx is SearchBatch with cancellation: a non-nil context
// is checked between the batch's queries (each individual search is
// one uninterruptible factor sweep), so a disconnected client stops
// paying for the rest of its batch. A nil context is never checked.
//
//kdash:ctxloop
func (ix *Index) SearchBatchCtx(ctx context.Context, queries []BatchQuery) ([][]topk.Result, []SearchStats, error) {
	for i, bq := range queries {
		if bq.Q < 0 || bq.Q >= ix.n {
			return nil, nil, fmt.Errorf("core: batch query %d: node %d outside [0,%d)", i, bq.Q, ix.n)
		}
		if bq.K <= 0 {
			return nil, nil, fmt.Errorf("core: batch query %d: K must be positive, got %d", i, bq.K)
		}
	}
	sw := ix.getSearchWS()
	defer ix.putSearchWS(sw)
	results := make([][]topk.Result, len(queries))
	stats := make([]SearchStats, len(queries))
	for i, bq := range queries {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("core: batch cancelled after %d of %d queries: %w", i, len(queries), err)
			}
		}
		rs, st, err := ix.search(bq.Q, SearchOptions{K: bq.K, Exclude: bq.Exclude}, sw)
		if err != nil {
			return nil, nil, err
		}
		results[i], stats[i] = rs, st
	}
	return results, stats, nil
}

// TopKBatch answers top-k for a block of query nodes with a shared
// answer-set size; see SearchBatch.
func (ix *Index) TopKBatch(qs []int, k int) ([][]topk.Result, []SearchStats, error) {
	queries := make([]BatchQuery, len(qs))
	for i, q := range qs {
		queries[i] = BatchQuery{Q: q, K: k}
	}
	return ix.SearchBatch(queries)
}

// internalExclusions converts an original-id exclusion set to internal
// ids; out-of-range entries are ignored (excluding a nonexistent node is
// harmless).
func (ix *Index) internalExclusions(exclude map[int]bool) map[int]bool {
	if len(exclude) == 0 {
		return nil
	}
	out := make(map[int]bool, len(exclude))
	for node, on := range exclude { //kdash:allow(determinism) set-to-set translation: membership only, order never reaches a float
		if on && node >= 0 && node < ix.n {
			out[ix.perm[node]] = true
		}
	}
	return out
}

// TopKPersonalized generalises TopK to a restart *distribution*: the walk
// restarts into the given seed nodes with probability proportional to
// their weights. This is Personalized PageRank in the sense of the
// paper's footnote 6 (RWR restarts to one node; PPR to a start set). The
// same factor identity applies — p = c U^{-1} L^{-1} r with r the
// normalised seed vector — and the tree estimation stays a valid upper
// bound because a multi-source BFS preserves the layer property Lemmas
// 1–2 rely on (every in-neighbour of a layer-l node sits on layer >=
// l-1). Results are exact, as in the single-seed case.
//
// Validation, the normalising sum and the workspace accumulation all
// iterate the seed nodes in ascending order: both sums are float
// accumulations, where map iteration order would drift bits between runs.
//
//kdash:deterministic
func (ix *Index) TopKPersonalized(seeds map[int]float64, k int) ([]topk.Result, SearchStats, error) {
	var stats SearchStats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: K must be positive, got %d", k)
	}
	if len(seeds) == 0 {
		return nil, stats, fmt.Errorf("core: empty seed set")
	}
	nodes := make([]int, 0, len(seeds))
	for node := range seeds { //kdash:allow(determinism) keys only: sorted below, before any mass is accumulated
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	total := 0.0
	for _, node := range nodes {
		w := seeds[node]
		if node < 0 || node >= ix.n {
			return nil, stats, fmt.Errorf("core: seed node %d outside [0,%d)", node, ix.n)
		}
		if w <= 0 {
			return nil, stats, fmt.Errorf("core: seed node %d has non-positive weight %v", node, w)
		}
		total += w
	}
	// Internal ids, sorted for deterministic visit order.
	internal := make([]int, 0, len(seeds))
	weight := make(map[int]float64, len(seeds))
	for _, node := range nodes {
		qi := ix.perm[node]
		internal = append(internal, qi)
		weight[qi] = seeds[node] / total
	}
	sort.Ints(internal)
	// Accumulate L^{-1} r into a pooled workspace, spot-cleaning the
	// scattered columns afterwards so the workspace goes back clean.
	sw := ix.getSearchWS()
	for _, qi := range internal {
		wq := weight[qi]
		for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
			sw.ws[ix.linv.RowIdx[i]] += wq * ix.linv.Val[i]
		}
	}
	heap := topk.New(k)
	ix.searchTree(internal, heap, sw, SearchOptions{K: k}, nil, &stats)
	for _, qi := range internal {
		for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
			sw.ws[ix.linv.RowIdx[i]] = 0
		}
	}
	ix.putSearchWS(sw)
	results := heap.Results()
	for i := range results {
		results[i].Node = ix.inv[results[i].Node]
	}
	return results, stats, nil
}

// bfs runs breadth-first search over the reordered adjacency structure
// (out-edges of v are the rows of column v of A).
func (ix *Index) bfs(root int) (order []int, layer []int) {
	layer = make([]int, ix.n)
	for i := range layer {
		layer[i] = -1
	}
	order = make([]int, 0, ix.n)
	layer[root] = 0
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for i := ix.a.ColPtr[v]; i < ix.a.ColPtr[v+1]; i++ {
			u := ix.a.RowIdx[i]
			if layer[u] < 0 {
				layer[u] = layer[v] + 1
				order = append(order, u)
			}
		}
	}
	return order, layer
}

// proximity computes p_u = c * (U^{-1} row u) . (L^{-1} e_q) with the
// latter pre-scattered in ws.
//
//kdash:noalloc
func (ix *Index) proximity(u int, ws []float64) float64 {
	s := 0.0
	for i := ix.uinv.RowPtr[u]; i < ix.uinv.RowPtr[u+1]; i++ {
		s += ix.uinv.Val[i] * ws[ix.uinv.ColIdx[i]]
	}
	return ix.c * s
}

// cPrime is Definition 1's c' = (1-c) / (1 - A_uu + c*A_uu).
func (ix *Index) cPrime(u int) float64 {
	return (1 - ix.c) / (1 - ix.selfA[u] + ix.c*ix.selfA[u])
}

// searchTree implements Algorithm 4 with the incremental estimation of
// Definition 2, generalised to one or more roots (all on layer 0 of a
// multi-source BFS; roots must be sorted ascending). The breadth-first
// tree is expanded lazily — a node's out-edges are explored only when the
// node itself is visited — so an early-terminated search costs O(visited
// nodes + their edges), not O(n + m). The visit order is identical to a
// fully materialised BFS.
//
//kdash:noalloc
func (ix *Index) searchTree(roots []int, heap *topk.Heap, sw *searchWS, opt SearchOptions, excluded map[int]bool, stats *SearchStats) {
	ws := sw.ws
	sw.gen++
	layer, mark, gen := sw.layer, sw.mark, sw.gen
	queue := append(sw.queue[:0], roots...)
	for _, r := range roots {
		mark[r] = gen
		layer[r] = 0
	}
	defer func() { sw.queue = queue[:0] }()

	// Estimation terms (Definition 2): t1 covers selected nodes one layer
	// above the current node, t2 selected nodes on the same layer, t3 the
	// unselected remainder bounded by Amax. With no nodes selected yet the
	// third term is (1 - 0) * Amax, which also reproduces the paper's
	// u' = q bootstrap case after the first visit.
	t1, t2, t3 := 0.0, 0.0, ix.amax
	prev := -1        // previously selected node
	prevLayer := -1   // its layer
	var prevP float64 // its exact proximity

	for head := 0; head < len(queue); head++ {
		u := queue[head]
		stats.Visited++
		// Fold the previously selected node into the estimation terms
		// (Definition 2). This happens for every visit so the terms always
		// reflect the full selected set Vs, including when the estimate
		// itself is bypassed for a root below.
		if prev >= 0 {
			if layer[u] == prevLayer {
				t2 += prevP * ix.amaxCol[prev]
			} else {
				t1 = t2 + prevP*ix.amaxCol[prev]
				t2 = 0
			}
			t3 -= prevP * ix.amax
			if t3 < 0 {
				t3 = 0 // guard against floating-point drift below zero
			}
		}
		var est float64
		if head < len(roots) {
			est = 1 // Definition 1: root nodes estimate to 1.
		} else {
			est = ix.cPrime(u) * (t1 + t2 + t3)
		}
		// Lemma 2: every unvisited node estimates no higher, so the whole
		// remaining search is safely discarded. The heap-full guard keeps
		// floating-point noise in a ~zero estimate from truncating the
		// candidate set before K nodes have been seen.
		if !opt.DisablePruning && heap.Len() == heap.K() && est < heap.Threshold() {
			stats.Terminated = true
			return
		}
		p := ix.proximity(u, ws)
		stats.ProximityComputations++
		if !excluded[u] {
			heap.Push(u, p)
		}
		prev, prevLayer, prevP = u, layer[u], p
		// Discover u's out-neighbours (lazy BFS expansion).
		for i := ix.a.ColPtr[u]; i < ix.a.ColPtr[u+1]; i++ {
			v := ix.a.RowIdx[i]
			if mark[v] != gen {
				mark[v] = gen
				layer[v] = layer[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// searchRandomRoot visits nodes in BFS order from an arbitrary root (then
// any nodes unreachable from it), using the layer-free upper bound
//
//	p̄_u = c' * ( Σ_{v∈Vs} p_v Amax(v) + (1 - Σ_{v∈Vs} p_v) Amax )
//
// which is sound for any visit order (the first sum bounds contributions
// of selected in-neighbours, the second everything else). Early
// termination is impossible — only per-node skipping — which is exactly
// why Figure 9 shows the random root needing far more proximity
// computations.
func (ix *Index) searchRandomRoot(qi int, heap *topk.Heap, ws []float64, opt SearchOptions, excluded map[int]bool, stats *SearchStats) {
	root := int((opt.RootSeed%int64(ix.n) + int64(ix.n)) % int64(ix.n))
	order, layer := ix.bfs(root)
	// Append nodes unreachable from the random root so no potential
	// answer is missed.
	for u := 0; u < ix.n; u++ {
		if layer[u] < 0 {
			order = append(order, u)
		}
	}
	var sumPA float64 // Σ p_v * Amax(v) over selected nodes
	var sumP float64  // Σ p_v over selected nodes
	for _, u := range order {
		stats.Visited++
		var est float64
		if u == qi {
			est = 1
		} else {
			rem := 1 - sumP
			if rem < 0 {
				rem = 0
			}
			est = ix.cPrime(u) * (sumPA + rem*ix.amax)
		}
		if !opt.DisablePruning && heap.Len() == heap.K() && est < heap.Threshold() {
			continue // skip this node only; no global termination
		}
		p := ix.proximity(u, ws)
		stats.ProximityComputations++
		if !excluded[u] {
			heap.Push(u, p)
		}
		sumPA += p * ix.amaxCol[u]
		sumP += p
	}
}

// Solve computes y = W^{-1} r through the inverted factors, where
// W = I - (1-c)A is the matrix the index factorized. Input and output are
// dense vectors in original node-id order; zero entries of r cost nothing
// in the L^{-1} pass. Unlike the proximity methods, Solve does not apply
// the restart factor c: it is the raw linear-system primitive that
// internal/shard's cross-shard block push is built on (each shard solve
// consumes a residual right-hand side that already carries its scaling).
func (ix *Index) Solve(r []float64) ([]float64, error) {
	if len(r) != ix.n {
		return nil, fmt.Errorf("core: Solve rhs has %d entries, index has %d nodes", len(r), ix.n)
	}
	// ws = L^{-1} (P r), accumulated column by column over nonzero rhs
	// entries.
	ws := make([]float64, ix.n)
	for u, v := range r {
		if v == 0 {
			continue
		}
		qi := ix.perm[u]
		for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
			ws[ix.linv.RowIdx[i]] += v * ix.linv.Val[i]
		}
	}
	// y = P^T (U^{-1} ws).
	out := make([]float64, ix.n)
	for u := 0; u < ix.n; u++ {
		s := 0.0
		for i := ix.uinv.RowPtr[u]; i < ix.uinv.RowPtr[u+1]; i++ {
			s += ix.uinv.Val[i] * ws[ix.uinv.ColIdx[i]]
		}
		out[ix.inv[u]] = s
	}
	return out, nil
}

// SolveBatch computes y = W^{-1} r for a block of right-hand sides
// through one traversal of the inverted factors, amortising the dominant
// U^{-1} sweep (and, where right-hand side patterns overlap, the L^{-1}
// scatter) across the whole block — the batched counterpart of Solve and
// the kernel internal/shard's batched cross-shard push shares its
// per-shard solves through. Input and output vectors are in original
// node-id order; per column, answers are identical to Solve (the same
// accumulation order runs per lane).
func (ix *Index) SolveBatch(rs [][]float64) ([][]float64, error) {
	return ix.NewBatchSolver().Solve(rs)
}

// BlockWidth is the lane count of the fixed-width block kernel. Eight
// lanes keep the interleaved workspace one cache line per factor entry,
// let every inner loop run with compile-time bounds (no per-element
// bounds checks), and keep the per-shard block workspace L2-resident.
// Wider blocks are processed as consecutive BlockWidth-wide chunks, so
// SolveOn's shared support lists change at BlockWidth boundaries.
const BlockWidth = 8

// blockWidth is the internal alias the kernels use.
const blockWidth = BlockWidth

// BatchSolver runs repeated block solves against one index, reusing its
// interleaved workspace and output vectors across calls so a push that
// performs many block solves does not pay an allocate-and-zero per
// solve. Not safe for concurrent use, and the returned vectors are valid
// only until the next Solve call (Index.SolveBatch wraps a fresh solver
// per call for the safe, unshared contract).
type BatchSolver struct {
	ix      *Index
	ws      []float64 // interleaved workspace: entry i of lane v at ws[i*blockWidth+v]
	ob      []float64 // interleaved output block for the scatter path
	mark    []bool    // workspace row support flags
	omark   []bool    // output row support flags (scatter path)
	support []int     // workspace rows touched by the current chunk
	osup    []int     // output rows touched by the current chunk
	outs    [][]float64
}

// NewBatchSolver returns a reusable block solver for the index.
func (ix *Index) NewBatchSolver() *BatchSolver {
	return &BatchSolver{ix: ix}
}

// Solve computes W^{-1} r per block lane; see Index.SolveBatch. Every
// entry of every returned vector is written.
func (bs *BatchSolver) Solve(rs [][]float64) ([][]float64, error) {
	outs, _, err := bs.solve(rs, true)
	return outs, err
}

// SolveOn is Solve plus, per lane, the rows (original node ids,
// unordered) that may hold nonzero solution entries; a nil list means
// any row. Rows outside a lane's list are NOT written — they may hold
// stale values from an earlier call — so callers must restrict their
// reads to the list. Lanes of the same 8-wide chunk share one list.
// This is the contract the sharded push consumes: a solve reaching a
// fraction of the shard costs a proportional fraction to apply.
func (bs *BatchSolver) SolveOn(rs [][]float64) ([][]float64, [][]int, error) {
	return bs.solve(rs, false)
}

func (bs *BatchSolver) solve(rs [][]float64, fullDrain bool) ([][]float64, [][]int, error) {
	ix := bs.ix
	nb := len(rs)
	if nb == 0 {
		return nil, nil, nil
	}
	for b, r := range rs {
		if len(r) != ix.n {
			return nil, nil, fmt.Errorf("core: SolveBatch rhs %d has %d entries, index has %d nodes", b, len(r), ix.n)
		}
	}
	for len(bs.outs) < nb {
		bs.outs = append(bs.outs, nil)
	}
	outs := bs.outs[:nb]
	for v := range outs {
		if len(outs[v]) != ix.n {
			outs[v] = make([]float64, ix.n)
		}
		// No zeroing: the drain writes every entry a caller may read.
	}
	sups := make([][]int, nb)
	for c := 0; c < nb; c += blockWidth {
		w := nb - c
		if w > blockWidth {
			w = blockWidth
		}
		sup := bs.solveChunk(rs[c:c+w], outs[c:c+w], fullDrain)
		for v := c; v < c+w; v++ {
			sups[v] = sup
		}
	}
	return outs, sups, nil
}

// solveChunk runs one fixed-width block through both inverse factors,
// returning the solution support (original ids) or nil for "any row".
// Lanes beyond len(rs) are zero padding: they cost arithmetic on zeros
// but buy compile-time loop bounds, a net win for every width measured.
//
// The L^{-1} pass records which workspace rows the chunk actually
// touches. When that support is small relative to U^{-1} — a restart
// vector reaches only nnz(L^{-1} e_q) rows — the U^{-1} apply runs as a
// column scatter over the support (through the lazily transposed
// factor) instead of the full row sweep, skipping the vast majority of
// factor entries. Both applies visit each output's contributions in
// ascending column order, so they are bit-identical to Solve per lane.
func (bs *BatchSolver) solveChunk(rs, outs [][]float64, fullDrain bool) []int {
	ix := bs.ix
	n := ix.n
	// One row past n: the trash row the blocked kernels' padding
	// entries accumulate zeros into.
	need := (n + 1) * blockWidth
	if cap(bs.ws) < need {
		bs.ws = make([]float64, need)
		bs.ob = make([]float64, need)
		bs.mark = make([]bool, n)
		bs.omark = make([]bool, n)
	} else {
		// The previous chunk spot-cleaned exactly its support rows, so
		// the workspace is already zero.
		bs.ws = bs.ws[:need]
	}
	ws := bs.ws
	w := len(rs)
	inv := ix.inverseFactors()
	blkL, blkU := inv.Blocked()
	colSize := inv.UinvColSizes()
	support := bs.support[:0]
	scatterEntries := 0
	touch := func(r int) {
		if !bs.mark[r] {
			bs.mark[r] = true
			support = append(support, r)
			scatterEntries += colSize[r]
		}
	}

	// ws = L^{-1} (P r) per lane. Rows are walked in original id order —
	// the same accumulation order Solve uses — and each L^{-1} column is
	// traversed once for every lane sharing a nonzero on that row, the
	// common case for the push's residual vectors (their support is the
	// shard's cut-target set). A row with a single active lane (e.g. the
	// first solve of a restart vector) takes the scalar scatter instead,
	// skipping the zero lanes.
	lp, lr, lval := ix.linv.ColPtr, ix.linv.RowIdx, ix.linv.Val
	var row [blockWidth]float64
	for u := 0; u < n; u++ {
		nz, lone := 0, 0
		for v := 0; v < w; v++ {
			rv := rs[v][u]
			row[v] = rv
			if rv != 0 {
				nz++
				lone = v
			}
		}
		if nz == 0 {
			continue
		}
		qi := ix.perm[u]
		if blkL != nil {
			// Blocked path: bookkeeping walks the true entries (int32
			// indices, half the bandwidth of the []int factor), the
			// 8-lane kernel walks the padded strip. Entry order inside a
			// column is unchanged, so results and the first-touch order
			// of the support match the scalar loops exactly.
			lo, hi := blkL.ColPtr[qi], blkL.ColPtr[qi+1]
			cnt := blkL.ColCnt[qi]
			if nz == 1 {
				rv := row[lone]
				for p := lo; p < lo+cnt; p++ {
					r := int(blkL.Rows[p])
					touch(r)
					ws[r*blockWidth+lone] += rv * blkL.Vals[p]
				}
				continue
			}
			for _, r := range blkL.Rows[lo : lo+cnt] {
				touch(int(r))
			}
			kernels.ScatterBlock8(ws, blkL.Rows[lo:hi], blkL.Vals[lo:hi], &row)
			continue
		}
		if nz == 1 {
			rv := row[lone]
			for i := lp[qi]; i < lp[qi+1]; i++ {
				r := lr[i]
				touch(r)
				ws[r*blockWidth+lone] += rv * lval[i]
			}
			continue
		}
		for i := lp[qi]; i < lp[qi+1]; i++ {
			r := lr[i]
			touch(r)
			base := r * blockWidth
			d := ws[base : base+blockWidth : base+blockWidth]
			s := lval[i]
			d[0] += s * row[0]
			d[1] += s * row[1]
			d[2] += s * row[2]
			d[3] += s * row[3]
			d[4] += s * row[4]
			d[5] += s * row[5]
			d[6] += s * row[6]
			d[7] += s * row[7]
		}
	}

	// Pick the cheaper U^{-1} apply: the scatter pays its entries plus a
	// sort and an output-block drain (~2 rows of traffic per shard row),
	// the sweep pays every stored entry.
	var outSup []int
	if scatterEntries+2*n < ix.uinv.NNZ() {
		if blkU != nil {
			outSup = bs.applyUpperScatterBlocked(blkU, support, scatterEntries, ws, outs, fullDrain)
		} else {
			outSup = bs.applyUpperScatter(support, scatterEntries, ws, outs, fullDrain)
		}
	} else {
		bs.applyUpperSweep(ws, outs)
	}
	// Leave the workspace zero for the next chunk: spot-clean exactly the
	// touched rows when the support is small, one bulk clear (memclr,
	// far cheaper per byte) when the chunk reached most of the shard.
	if len(support)*4 < n {
		for _, r := range support {
			bs.mark[r] = false
			base := r * blockWidth
			clear(ws[base : base+blockWidth])
		}
	} else {
		clear(ws)
		clear(bs.mark)
	}
	bs.support = support
	return outSup
}

// applyUpperSweep computes the U^{-1} apply by rows: each row's indices
// and values are loaded once and dotted against all lanes out of
// registers.
func (bs *BatchSolver) applyUpperSweep(ws []float64, outs [][]float64) {
	ix := bs.ix
	w := len(outs)
	up, uc, uval := ix.uinv.RowPtr, ix.uinv.ColIdx, ix.uinv.Val
	for u := 0; u < ix.n; u++ {
		var acc [blockWidth]float64
		for i := up[u]; i < up[u+1]; i++ {
			base := uc[i] * blockWidth
			cws := ws[base : base+blockWidth : base+blockWidth]
			s := uval[i]
			acc[0] += s * cws[0]
			acc[1] += s * cws[1]
			acc[2] += s * cws[2]
			acc[3] += s * cws[3]
			acc[4] += s * cws[4]
			acc[5] += s * cws[5]
			acc[6] += s * cws[6]
			acc[7] += s * cws[7]
		}
		ou := ix.inv[u]
		for v := 0; v < w; v++ {
			outs[v][ou] = acc[v]
		}
	}
}

// applyUpperScatter computes the U^{-1} apply by columns of the
// workspace support only, at cost proportional to the support's column
// sizes instead of nnz(U^{-1}). Ascending support order keeps each
// output's accumulation sequence identical to the row sweep's.
//
// When the scatter is small enough that the solution's reach must be a
// minor fraction of the shard (each scattered entry introduces at most
// one output row), the touched rows are tracked, drained selectively
// and returned as the support (original ids) — the support-flag branch
// stays out of the hot loop otherwise. A nil return means every output
// entry was written.
func (bs *BatchSolver) applyUpperScatter(support []int, scatterEntries int, ws []float64, outs [][]float64, fullDrain bool) []int {
	ix := bs.ix
	n, w := ix.n, len(outs)
	uCol := ix.uinvByColumn()
	// ob is zero on entry: the first allocation zeroes it and the drain
	// below re-zeroes every row it reads.
	ob := bs.ob[:n*blockWidth]
	// The scatter must visit columns ascending (it keeps the summation
	// order identical to the row sweep); lu.PreferFlagScan decides scan
	// vs sort with the same cost model as the single-lane kernel.
	if lu.PreferFlagScan(len(support), n) {
		support = support[:0]
		for r := 0; r < n; r++ {
			if bs.mark[r] {
				support = append(support, r)
			}
		}
	} else {
		sort.Ints(support)
	}
	// Track the output support unless the scatter is so large the reach
	// is certainly most of the shard: the per-entry flag branch then
	// buys a support-sized drain instead of a full-shard one.
	track := !fullDrain && scatterEntries*2 < n
	omark, osup := bs.omark, bs.osup[:0]
	for _, j := range support {
		base := j * blockWidth
		cws := ws[base : base+blockWidth : base+blockWidth]
		rows := uCol.RowIdx[uCol.ColPtr[j]:uCol.ColPtr[j+1]]
		vals := uCol.Val[uCol.ColPtr[j]:uCol.ColPtr[j+1]]
		vals = vals[:len(rows)] // hint: drops the vals[k] bounds check
		for k, r := range rows {
			s := vals[k]
			if track && !omark[r] {
				omark[r] = true
				osup = append(osup, r)
			}
			obase := r * blockWidth
			d := ob[obase : obase+blockWidth : obase+blockWidth]
			d[0] += s * cws[0]
			d[1] += s * cws[1]
			d[2] += s * cws[2]
			d[3] += s * cws[3]
			d[4] += s * cws[4]
			d[5] += s * cws[5]
			d[6] += s * cws[6]
			d[7] += s * cws[7]
		}
	}
	bs.osup = osup
	if !track {
		for u := 0; u < n; u++ {
			ou := ix.inv[u]
			base := u * blockWidth
			for v := 0; v < w; v++ {
				outs[v][ou] = ob[base+v]
			}
			clear(ob[base : base+blockWidth])
		}
		return nil
	}
	// Drain only the touched rows, translating to original ids for the
	// returned support; untouched output entries keep stale values the
	// SolveOn contract forbids reading.
	mapped := make([]int, len(osup))
	for k, u := range osup {
		omark[u] = false
		ou := ix.inv[u]
		mapped[k] = ou
		base := u * blockWidth
		for v := 0; v < w; v++ {
			outs[v][ou] = ob[base+v]
		}
		clear(ob[base : base+blockWidth])
	}
	return mapped
}

// applyUpperScatterBlocked is applyUpperScatter over the blocked strip
// form of the transposed factor: per entry, the 8-lane SIMD kernel
// replaces the unrolled scalar lanes, and the baked permutation means
// the output block is indexed by original node ids — the drain loses
// its translation loads. Contribution order per output row is
// unchanged, so lanes stay bit-identical to the scalar paths.
func (bs *BatchSolver) applyUpperScatterBlocked(b *lu.BlockedCSC, support []int, scatterEntries int, ws []float64, outs [][]float64, fullDrain bool) []int {
	ix := bs.ix
	n, w := ix.n, len(outs)
	// ob is zero on entry: the first allocation zeroes it and the drain
	// below re-zeroes every row it reads, including the trash row.
	ob := bs.ob[:(n+1)*blockWidth]
	// The scatter must visit columns ascending (it keeps the summation
	// order identical to the row sweep); lu.PreferFlagScan decides scan
	// vs sort with the same cost model as the single-lane kernel.
	if lu.PreferFlagScan(len(support), n) {
		support = support[:0]
		for r := 0; r < n; r++ {
			if bs.mark[r] {
				support = append(support, r)
			}
		}
	} else {
		sort.Ints(support)
	}
	// Track the output support unless the scatter is so large the reach
	// is certainly most of the shard: the bookkeeping pass then buys a
	// support-sized drain instead of a full-shard one.
	track := !fullDrain && scatterEntries*2 < n
	omark, osup := bs.omark, bs.osup[:0]
	for _, j := range support {
		base := j * blockWidth
		cws := (*[blockWidth]float64)(ws[base : base+blockWidth])
		lo, hi := b.ColPtr[j], b.ColPtr[j+1]
		if track {
			for _, r := range b.Rows[lo : lo+b.ColCnt[j]] {
				if !omark[r] {
					omark[r] = true
					osup = append(osup, int(r))
				}
			}
		}
		kernels.ScatterBlock8(ob, b.Rows[lo:hi], b.Vals[lo:hi], cws)
	}
	bs.osup = osup
	if !track {
		for r := 0; r < n; r++ {
			base := r * blockWidth
			for v := 0; v < w; v++ {
				outs[v][r] = ob[base+v]
			}
			clear(ob[base : base+blockWidth])
		}
		clear(ob[n*blockWidth:])
		return nil
	}
	// Drain only the touched rows — already original ids, thanks to the
	// baked permutation; untouched output entries keep stale values the
	// SolveOn contract forbids reading.
	mapped := make([]int, len(osup))
	for k, r := range osup {
		omark[r] = false
		mapped[k] = r
		base := r * blockWidth
		for v := 0; v < w; v++ {
			outs[v][r] = ob[base+v]
		}
		clear(ob[base : base+blockWidth])
	}
	clear(ob[n*blockWidth:])
	return mapped
}

// Statz reports observability fields for the server's /statz endpoint.
func (ix *Index) Statz() map[string]interface{} {
	precision := "float64"
	if ix.precision == lu.Float32 {
		precision = "float32"
	}
	return map[string]interface{}{
		"kind":         "monolithic",
		"nodes":        ix.n,
		"restart":      ix.c,
		"edges":        ix.stats.Edges,
		"nnzInverse":   ix.stats.NNZInverse,
		"inverseRatio": ix.stats.InverseRatio,
		"reorder":      ix.stats.Method.String(),
		"kernels":      kernels.Impl(),
		"precision":    precision,
	}
}

// ProximityVector computes the full exact proximity vector for q through
// the factors (Equation (3)): p = c U^{-1} L^{-1} e_q. Results are in
// original node-id order. The solve runs through a pooled single-lane
// sparse solver, so only the returned vector is allocated and only the
// factor entries the query's support reaches are traversed.
func (ix *Index) ProximityVector(q int) ([]float64, error) {
	if q < 0 || q >= ix.n {
		return nil, fmt.Errorf("core: query node %d outside [0,%d)", q, ix.n)
	}
	s := ix.getSparseSolver()
	y, sup, err := s.SolveSparse([]int{q}, []float64{1})
	if err != nil {
		ix.putSparseSolver(s)
		return nil, err
	}
	out := make([]float64, ix.n)
	if sup == nil {
		for u, v := range y {
			out[u] = ix.c * v
		}
	} else {
		for _, u := range sup {
			out[u] = ix.c * y[u]
		}
	}
	ix.putSparseSolver(s)
	return out, nil
}

// ProximityVectorCtx is ProximityVector with best-effort cancellation:
// the monolithic vector is one indivisible factor solve, so the context
// is checked once before it starts (a blown budget skips the solve; an
// in-flight solve runs to completion). A nil ctx never cancels.
func (ix *Index) ProximityVectorCtx(ctx context.Context, q int) ([]float64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: query cancelled: %w", err)
		}
	}
	return ix.ProximityVector(q)
}

// Proximity computes the single exact proximity of node u w.r.t. query q
// through a pooled workspace: one L^{-1} column scatter, one U^{-1} row
// dot, no allocation.
func (ix *Index) Proximity(q, u int) (float64, error) {
	if q < 0 || q >= ix.n || u < 0 || u >= ix.n {
		return 0, fmt.Errorf("core: node pair (%d,%d) outside [0,%d)", q, u, ix.n)
	}
	qi := ix.perm[q]
	sw := ix.getSearchWS()
	for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
		sw.ws[ix.linv.RowIdx[i]] = ix.linv.Val[i]
	}
	p := ix.proximity(ix.perm[u], sw.ws)
	for i := ix.linv.ColPtr[qi]; i < ix.linv.ColPtr[qi+1]; i++ {
		sw.ws[ix.linv.RowIdx[i]] = 0
	}
	ix.putSearchWS(sw)
	return p, nil
}
